"""The parallel harness's one promise: bit-identical to the serial path.

``run_cells(specs, trials, jobs=N)`` must produce field-for-field identical
results to ``jobs=1`` — same commit counts, same latencies, same abort
reasons, same queue accounting — because the paper-shape assertions in the
benchmarks and the invariant suite both ride on those numbers.  NaN-valued
latency fields (cells with no commits in a bucket) compare as identical
when both sides are NaN.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.harness.experiment import ExperimentSpec, run_cell
from repro.harness.parallel import (
    metrics_digest,
    resolve_jobs,
    run_cells,
    trial_seed,
)


def small_spec(name: str = "cell", *, queue_fraction: float = 0.0,
               cross_group_fraction: float = 0.0, loss: float = 0.0,
               duplicate: float = 0.0) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        cluster=ClusterConfig(
            placement=PlacementConfig.ranged(2),
            loss_probability=loss,
            duplicate_probability=duplicate,
        ),
        workload=WorkloadConfig(
            n_transactions=12,
            ops_per_transaction=3,
            n_attributes=8,
            n_rows=2,
            n_threads=3,
            target_rate_per_thread=20.0,
            queue_fraction=queue_fraction,
            cross_group_fraction=cross_group_fraction,
        ),
        protocol="paxos-cp",
    )


def nan_aware_equal(a, b) -> bool:
    """Structural equality where NaN == NaN (recursive over dataclasses)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            nan_aware_equal(a[key], b[key]) for key in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            nan_aware_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


def assert_metrics_identical(serial, parallel):
    left, right = asdict(serial), asdict(parallel)
    assert left.keys() == right.keys()
    for field_name in left:
        assert nan_aware_equal(left[field_name], right[field_name]), (
            f"field {field_name!r} differs: "
            f"{left[field_name]!r} != {right[field_name]!r}"
        )


class TestSeedDerivation:
    def test_matches_the_serial_loop(self):
        assert [trial_seed(7, trial) for trial in range(3)] == [7, 8, 9]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestSerialPath:
    def test_run_cells_matches_run_cell(self):
        spec = small_spec()
        via_cells = run_cells([spec], trials=2, base_seed=3, jobs=1)[0]
        via_cell = run_cell(spec, trials=2, base_seed=3)
        assert_metrics_identical(via_cells.metrics, via_cell.metrics)

    def test_results_in_spec_order(self):
        specs = [small_spec(f"cell-{index}") for index in range(3)]
        results = run_cells(specs, trials=1, jobs=1)
        assert [result.spec.name for result in results] == [
            "cell-0", "cell-1", "cell-2",
        ]

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            run_cells([small_spec()], trials=0)

    def test_empty_specs(self):
        assert run_cells([], trials=2, jobs=2) == []


class TestParallelDeterminism:
    """The acceptance claims, on a deliberately small grid (spawn pools
    carry real start-up cost, so one pool run covers several assertions)."""

    def test_parallel_identical_to_serial_field_for_field(self):
        specs = [
            small_spec("plain"),
            small_spec("mixed", queue_fraction=0.4, cross_group_fraction=0.2),
        ]
        serial = run_cells(specs, trials=2, base_seed=1, jobs=1)
        parallel = run_cells(specs, trials=2, base_seed=1, jobs=4)
        assert metrics_digest(serial) == metrics_digest(parallel)
        for cell_serial, cell_parallel in zip(serial, parallel):
            assert_metrics_identical(cell_serial.metrics, cell_parallel.metrics)
            assert cell_serial.per_instance.keys() == cell_parallel.per_instance.keys()
            for dc in cell_serial.per_instance:
                assert_metrics_identical(
                    cell_serial.per_instance[dc], cell_parallel.per_instance[dc],
                )
            # Trial 0's raw outcomes ride along identically too.
            assert len(cell_serial.outcomes) == len(cell_parallel.outcomes)
            for left, right in zip(cell_serial.outcomes, cell_parallel.outcomes):
                assert left.transaction.tid == right.transaction.tid
                assert left.status is right.status
                assert left.latency_ms == right.latency_ms

    def test_fault_seed_checks_invariants_in_workers(self):
        # A lossy, duplicating run with queue sends and 2PC traffic: the
        # full §3 + queue-delivery invariant suite runs inside the workers
        # (run_once checks invariants), and its numbers still match serial.
        spec = small_spec(
            "faulty", queue_fraction=0.4, cross_group_fraction=0.2,
            loss=0.05, duplicate=0.05,
        )
        assert spec.check_invariants  # workers really do run the suite
        serial = run_cells([spec], trials=2, base_seed=5, jobs=1)
        parallel = run_cells([spec], trials=2, base_seed=5, jobs=2)
        assert metrics_digest(serial) == metrics_digest(parallel)
        assert_metrics_identical(serial[0].metrics, parallel[0].metrics)
        # The queue accounting survived the pool round-trip exactly.
        queue = parallel[0].metrics.queue
        assert queue.applied_online + queue.drained_offline + queue.undelivered == queue.sends


class TestRunCellDelegation:
    def test_run_cell_jobs_matches_serial(self):
        spec = small_spec()
        serial = run_cell(spec, trials=2, base_seed=2, jobs=1)
        parallel = run_cell(spec, trials=2, base_seed=2, jobs=2)
        assert_metrics_identical(serial.metrics, parallel.metrics)
