"""Parallel-vs-serial invariant checker equivalence.

The worker-side parallel checker must be *indistinguishable* from the
serial per-group loop it replaces: same verdicts, same violation strings,
same raise order, same resolved 2PC decision map.  Both paths evaluate
:meth:`repro.cluster.Cluster.group_violations` — these tests pin the
equivalence from the outside anyway: a clean mixed run must produce
identical digests with the parallel checker on and off (through the real
multiprocessing workers), and a doctored run must raise field-identical
violations through either executor.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.harness.experiment import ExperimentSpec, run_once
from repro.harness.parallel import metrics_digest
from repro.wal.invariants import InvariantViolation
from repro.workload.driver import WorkloadDriver
from tests.helpers import committed, txn

N_GROUPS = 4


def mixed_spec(engine: str, parallel_check: bool = True,
               workers: int | None = 2) -> ExperimentSpec:
    """A small cross-group + queue mix: every checker phase has work."""
    return ExperimentSpec(
        name="checker-cell",
        cluster=ClusterConfig(
            placement=PlacementConfig.ranged(N_GROUPS),
            shards=N_GROUPS,
            engine=engine,  # type: ignore[arg-type]
            shard_workers=workers,
            parallel_check=parallel_check,
        ),
        workload=WorkloadConfig(
            n_transactions=16, n_rows=N_GROUPS, n_threads=N_GROUPS,
            target_rate_per_thread=6.0,
            cross_group_fraction=0.2, queue_fraction=0.2,
            group_distribution="pinned",
        ),
        protocol="paxos-cp",
    )


def build_world(seed: int):
    """A bare-cluster mixed run, drained and ready to check."""
    cluster = Cluster(ClusterConfig(
        placement=PlacementConfig.ranged(N_GROUPS), seed=seed,
    ))
    driver = WorkloadDriver(
        cluster,
        WorkloadConfig(
            n_transactions=16, n_rows=N_GROUPS, n_threads=2,
            target_rate_per_thread=6.0,
            cross_group_fraction=0.2, queue_fraction=0.2,
        ),
        "paxos-cp",
        datacenter=cluster.topology.names[0],
    )
    driver.install_data()
    driver.start()
    cluster.start_queue_pumps()
    cluster.run()
    return cluster, driver


def violations_checker(cluster: Cluster, seen: dict):
    """A ``group_checker`` with the mp coordinator's exact semantics:
    evaluate every group's verdict, then raise the first failing group in
    sorted order — recording everything for the equivalence assertions."""

    def checker(by_group, logs, decisions, strict_timeouts):
        for group, group_outcomes in by_group.items():
            seen[group] = cluster.group_violations(
                group, group_outcomes, strict_timeouts, decisions
            )
        for group in sorted(seen):
            if seen[group]:
                raise InvariantViolation(seen[group])

    return checker


class TestParallelCheckerDigests:
    """End-to-end through the real shard workers' check protocol."""

    def test_parallel_check_matches_serial_check(self):
        on = run_once(mixed_spec("sharded-mp", parallel_check=True), seed=3)
        off = run_once(mixed_spec("sharded-mp", parallel_check=False), seed=3)
        reference = run_once(mixed_spec("global"), seed=3)
        assert metrics_digest([on]) == metrics_digest([reference])
        assert metrics_digest([off]) == metrics_digest([reference])

    def test_parallel_check_multi_worker(self):
        """Groups split over several workers: routing by lane ownership."""
        spec = mixed_spec("sharded-mp", parallel_check=True, workers=3)
        result = run_once(spec, seed=5)
        reference = run_once(mixed_spec("global"), seed=5)
        assert metrics_digest([result]) == metrics_digest([reference])


class TestCheckerVerdictEquivalence:
    """Serial loop vs an external executor, field for field."""

    def test_clean_run_identical_decisions_and_verdicts(self):
        cluster_a, driver_a = build_world(seed=2)
        cluster_b, driver_b = build_world(seed=2)
        decisions_a = cluster_a.check_invariants_all(driver_a.result.outcomes)
        seen: dict[str, list[str]] = {}
        decisions_b = cluster_b.check_invariants_all(
            driver_b.result.outcomes,
            group_checker=violations_checker(cluster_b, seen),
        )
        assert decisions_a == decisions_b
        # The external executor saw every group and found them all clean —
        # exactly what the serial loop concluded by not raising.
        assert set(seen) == set(cluster_b.groups)
        assert all(violations == [] for violations in seen.values())

    def test_doctored_run_identical_violation_strings(self):
        """A planted violation must surface with byte-identical anomaly
        strings through both executors (and name the planted tid)."""
        cluster_a, driver_a = build_world(seed=4)
        cluster_b, driver_b = build_world(seed=4)
        # Committed but absent from the log: an L1 violation in group-1.
        ghost = committed(txn("ghost", writes={"a": "v"}, group="group-1"), 1)
        with pytest.raises(InvariantViolation) as serial:
            cluster_a.check_invariants_all(
                driver_a.result.outcomes + [ghost])
        seen: dict[str, list[str]] = {}
        with pytest.raises(InvariantViolation) as parallel:
            cluster_b.check_invariants_all(
                driver_b.result.outcomes + [ghost],
                group_checker=violations_checker(cluster_b, seen),
            )
        assert serial.value.violations == parallel.value.violations
        assert any("ghost" in v for v in serial.value.violations)

    def test_strict_timeouts_flow_through(self):
        """The strictness flag reaches the external executor unchanged."""
        cluster, driver = build_world(seed=6)
        captured: list[bool] = []

        def checker(by_group, logs, decisions, strict_timeouts):
            captured.append(strict_timeouts)

        cluster.check_invariants_all(
            driver.result.outcomes, strict_timeouts=True,
            group_checker=checker,
        )
        assert captured == [True]
