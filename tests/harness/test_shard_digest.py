"""Digest equality: the sharded kernels against the global kernel.

The sharded simulation's whole contract is *bit-identical execution*: for a
fixed deployment layout (``shards``), every engine — the single-heap laned
kernel, the conservative-lookahead sharded kernel, and its multiprocessing
fan-out — must produce field-identical metrics, logs, and outcomes.  This
module sweeps that contract over seeds × protocols (basic Paxos, Paxos-CP,
2PC mixes, queue mixes) × fault injection × shard counts (1, 4, n_groups).

Workloads are sized for CI; the full-scale equivalents run in the
benchmarks (bench_groups_scaling --sharded64 asserts the same digests at 64
groups).
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import replace

import pytest

from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.cluster import Cluster
from repro.failures.injector import FailureInjector
from repro.harness.experiment import ExperimentSpec, run_once
from repro.harness.metrics import RunMetrics
from repro.harness.parallel import metrics_digest
from repro.workload.driver import WorkloadDriver

N_GROUPS = 6
SHARD_COUNTS = (1, 4, N_GROUPS)


def base_spec(engine: str, shards: int, **workload) -> ExperimentSpec:
    defaults = dict(
        n_transactions=36, n_rows=N_GROUPS, n_threads=4,
        target_rate_per_thread=4.0,
    )
    defaults.update(workload)
    return ExperimentSpec(
        name="digest-cell",
        cluster=ClusterConfig(
            placement=PlacementConfig.ranged(N_GROUPS),
            shards=shards,
            engine=engine,  # type: ignore[arg-type]
        ),
        workload=WorkloadConfig(**defaults),
        protocol="paxos-cp",
    )


def fingerprint(cluster: Cluster, driver: WorkloadDriver) -> str:
    """A stable digest of everything a run decided.

    Outcomes (through ``RunMetrics``, every field), the finalized per-group
    logs entry by entry, and the resolved 2PC decision map.
    """
    outcomes = driver.result.outcomes
    logs = cluster.finalize_all()
    decisions = cluster.check_invariants_all(outcomes, logs=logs)
    metrics = RunMetrics.from_outcomes(outcomes, protocol="x")
    payload = [repr(metrics), repr(sorted(decisions.items()))]
    for group in sorted(logs):
        for position in sorted(logs[group]):
            payload.append(f"{group}@{position}:{logs[group][position]!r}")
    return hashlib.sha256("\n".join(payload).encode()).hexdigest()


def run_world(engine: str, shards: int, seed: int, protocol: str,
              cross: float = 0.0, queue: float = 0.0,
              faults: bool = False, adaptive: bool = False,
              promises: bool = True) -> str:
    """One bare-``Cluster`` run, fingerprinted.

    ``adaptive=True`` mirrors what ``prepare_run`` does for sharded
    engines: restrict the kernel to the workload's channel graph (the
    per-lane-pair lookahead matrix) and arm the promise book; ``promises``
    then toggles the dynamic-promise layer on top of the static matrix.
    """
    cluster = Cluster(ClusterConfig(
        placement=PlacementConfig.ranged(N_GROUPS),
        shards=shards,
        engine=engine,  # type: ignore[arg-type]
        seed=seed,
        promises=promises,
    ))
    driver = WorkloadDriver(
        cluster,
        WorkloadConfig(
            n_transactions=30, n_rows=N_GROUPS, n_threads=3,
            target_rate_per_thread=4.0,
            cross_group_fraction=cross, queue_fraction=queue,
        ),
        protocol,  # type: ignore[arg-type]
        datacenter=cluster.topology.names[0],
    )
    driver.install_data()
    driver.start()
    if queue > 0:
        cluster.start_queue_pumps()
    if faults:
        injector = FailureInjector(cluster)
        injector.outage(cluster.topology.names[1], 400.0, 900.0)
        injector.partition(cluster.topology.names[0],
                           cluster.topology.names[2], 1500.0, 700.0)
        injector.loss_episode(0.05, 2500.0, 600.0)
    if adaptive and not cluster.shard_map.single_lane:
        channels = set(driver.lane_channels())
        if queue > 0:
            for group in cluster.placement.groups:
                channels |= cluster.shard_map.channels_for_pump(group)
        cluster.restrict_lane_channels(channels)
        cluster.enable_promises([driver])
    cluster.run()
    return fingerprint(cluster, driver)


class TestEngineDigestEquality:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", (0, 11))
    @pytest.mark.parametrize("scenario", (
        ("paxos", dict()),
        ("paxos-cp", dict(cross=0.25)),
        ("paxos-cp", dict(queue=0.25)),
    ), ids=("basic", "2pc", "queues"))
    def test_global_vs_sharded(self, shards, seed, scenario):
        protocol, extra = scenario
        a = run_world("global", shards, seed, protocol, **extra)
        b = run_world("sharded", shards, seed, protocol, **extra)
        assert a == b

    @pytest.mark.parametrize("shards", (1, 4))
    def test_fault_injection_digest(self, shards):
        a = run_world("global", shards, 5, "paxos", faults=True)
        b = run_world("sharded", shards, 5, "paxos", faults=True)
        assert a == b

    def test_fault_injection_with_queue_traffic(self):
        a = run_world("global", N_GROUPS, 9, "paxos-cp", queue=0.3, faults=True)
        b = run_world("sharded", N_GROUPS, 9, "paxos-cp", queue=0.3, faults=True)
        assert a == b


@functools.lru_cache(maxsize=None)
def global_fingerprint(seed: int, protocol: str, cross: float = 0.0,
                       queue: float = 0.0, faults: bool = False) -> str:
    """The reference digest, computed once per scenario.

    The global kernel ignores the lookahead matrix and the promise book,
    so one reference run serves every (adaptive, promises) row.
    """
    return run_world("global", N_GROUPS, seed, protocol,
                     cross=cross, queue=queue, faults=faults)


class TestAdaptiveLookaheadDigest:
    """Seeds × protocols × faults × promises on/off against the reference.

    The hard correctness bar for the adaptive-lookahead layer: with the
    per-lane-pair matrix restricted to the workload's channel graph and
    dynamic promises armed (or disarmed — the static matrix alone must
    also be sound), the sharded kernel's execution stays byte-identical to
    the global kernel's.  Any unsound horizon widens a window past a real
    cross-lane message and either trips the promise-enforcement oracle or
    shifts an event order — both of which this digest comparison catches.
    """

    @pytest.mark.parametrize("promises", (True, False),
                             ids=("promises", "matrix-only"))
    @pytest.mark.parametrize("seed", (3, 17))
    @pytest.mark.parametrize("scenario", (
        ("paxos", dict()),
        ("paxos-cp", dict(cross=0.25)),
        ("paxos-cp", dict(queue=0.25)),
        ("paxos-cp", dict(cross=0.2, queue=0.2)),
    ), ids=("basic", "2pc", "queues", "chatty"))
    def test_adaptive_vs_global(self, promises, seed, scenario):
        protocol, extra = scenario
        reference = global_fingerprint(seed, protocol, **extra)
        adaptive = run_world("sharded", N_GROUPS, seed, protocol,
                             adaptive=True, promises=promises, **extra)
        assert adaptive == reference

    @pytest.mark.parametrize("promises", (True, False),
                             ids=("promises", "matrix-only"))
    def test_adaptive_fault_injection(self, promises):
        reference = global_fingerprint(5, "paxos-cp", cross=0.2, faults=True)
        adaptive = run_world("sharded", N_GROUPS, 5, "paxos-cp", cross=0.2,
                             faults=True, adaptive=True, promises=promises)
        assert adaptive == reference


class TestRunOnceEngines:
    """run_once-level equality, including the channel-restricted paths."""

    @pytest.mark.parametrize("dist", ("uniform", "pinned"))
    def test_sharded_matches_global(self, dist):
        a = run_once(base_spec("global", 4, group_distribution=dist), seed=2)
        b = run_once(base_spec("sharded", 4, group_distribution=dist), seed=2)
        assert metrics_digest([a]) == metrics_digest([b])

    def test_pinned_run_decomposes(self):
        result = run_once(base_spec("sharded", N_GROUPS,
                                    group_distribution="pinned"), seed=2)
        profile = result.lane_profile
        assert profile is not None
        # No cross-lane traffic and a single drain window: the lane-closed
        # regime the multiprocessing mode exploits.
        assert profile["cross_messages"] == 0
        assert profile["windows"] == 1

    def test_sharded_mp_matches_inprocess(self):
        spec = base_spec("sharded", 4, group_distribution="pinned",
                         n_transactions=24)
        mp_spec = replace(
            spec, cluster=replace(spec.cluster, engine="sharded-mp"),
        )
        a = run_once(spec, seed=4)
        b = run_once(mp_spec, seed=4)
        assert metrics_digest([a]) == metrics_digest([b])

    def test_sharded_mp_windowed_traffic_matches(self):
        """Roaming clients force the coordinator's windowed message rounds."""
        spec = base_spec("sharded", 4, n_transactions=12)
        mp_spec = replace(
            spec, cluster=replace(spec.cluster, engine="sharded-mp"),
        )
        a = run_once(spec, seed=6)
        b = run_once(mp_spec, seed=6)
        assert metrics_digest([a]) == metrics_digest([b])

    def test_sharded_mp_multi_worker_windowed_matches(self):
        """Cross-worker exchange: lanes split over several workers.

        Regression test for the coordinator's horizon computation ignoring
        in-flight messages: with more than one worker, a reply routed
        through the coordinator used to arrive below the destination lane's
        already-drained frontier and crash.  ``shard_workers`` deliberately
        exceeds this machine's CPU count — worker count is a correctness
        dial here, not a performance one.
        """
        spec = base_spec("global", 4, n_transactions=12)
        mp_spec = replace(
            spec,
            cluster=replace(spec.cluster, engine="sharded-mp",
                            shard_workers=3),
        )
        a = run_once(spec, seed=6)
        b = run_once(mp_spec, seed=6)
        assert metrics_digest([a]) == metrics_digest([b])

    def test_sharded_mp_multi_worker_2pc_matches(self):
        spec = base_spec("global", 4, n_transactions=12,
                         cross_group_fraction=0.3, n_threads=3)
        mp_spec = replace(
            spec,
            cluster=replace(spec.cluster, engine="sharded-mp",
                            shard_workers=5),
        )
        a = run_once(spec, seed=8)
        b = run_once(mp_spec, seed=8)
        assert metrics_digest([a]) == metrics_digest([b])
