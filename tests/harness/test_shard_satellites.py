"""Satellite behaviours around the sharded simulation subsystem.

Oversubscription clamping, the latency-floor API, the pinned workload
distribution, and the lane-profile surfacing.
"""

from __future__ import annotations

import warnings

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.harness.parallel import resolve_jobs, shard_procs_per_run
from repro.harness.experiment import ExperimentSpec
from repro.harness.profiling import format_lane_profile
from repro.net.latency import ConstantLatency, RttMatrixLatency
from repro.net.topology import INTRA_DC_RTT_MS, cluster_preset
from repro.workload.driver import WorkloadDriver


class TestResolveJobsClamp:
    def test_plain_jobs_unchanged(self):
        assert resolve_jobs(3) == 3

    def test_oversubscription_clamps_with_warning(self):
        import os

        cpus = os.cpu_count() or 1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            jobs = resolve_jobs(cpus * 4, procs_per_job=2)
        assert jobs == max(1, cpus // 2)
        assert any("oversubscribes" in str(w.message) for w in caught)

    def test_auto_jobs_budgets_for_shard_workers(self):
        import os

        cpus = os.cpu_count() or 1
        assert resolve_jobs(None, procs_per_job=cpus) == 1

    def test_sharded_mp_specs_survive_a_jobs_pool(self, monkeypatch):
        """Regression: a daemonic Pool cannot host sharded-mp runs (their
        shard workers are child processes); run_cells must pick the
        futures executor for them.  The CPU count is patched up so the
        oversubscription clamp leaves jobs > 1 and the nested-spawn path
        genuinely executes."""
        import os

        from repro.harness.parallel import metrics_digest, run_cells

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        spec = ExperimentSpec(
            name="pool-cell",
            cluster=ClusterConfig(
                placement=PlacementConfig.ranged(2), shards=2,
                engine="sharded-mp", shard_workers=2,
            ),
            workload=WorkloadConfig(
                n_transactions=6, n_rows=2, n_threads=2,
                target_rate_per_thread=8.0,
            ),
            protocol="paxos",
        )
        parallel = run_cells([spec], trials=2, jobs=2)
        serial = run_cells([spec], trials=2, jobs=1)
        assert metrics_digest(parallel) == metrics_digest(serial)

    def test_shard_procs_per_run(self):
        spec = ExperimentSpec(
            name="x",
            cluster=ClusterConfig(
                placement=PlacementConfig.ranged(4), shards=4,
                engine="sharded-mp", shard_workers=2,
            ),
            workload=WorkloadConfig(),
        )
        assert shard_procs_per_run(spec) == 2
        inline = ExperimentSpec(name="y", cluster=ClusterConfig(),
                                workload=WorkloadConfig())
        assert shard_procs_per_run(inline) == 1


class TestMinDelay:
    def test_constant_latency_floor(self):
        assert ConstantLatency(2.5).min_delay() == 2.5

    def test_rtt_matrix_floor_is_intra_dc_half_rtt_at_jitter_floor(self):
        topology = cluster_preset("VVV")
        model = RttMatrixLatency(topology, jitter=0.08)
        expected = (INTRA_DC_RTT_MS / 2.0) * (1.0 - 2.0 * 0.08)
        assert model.min_delay() == pytest.approx(expected)

    def test_floor_bounds_every_draw(self):
        import random

        topology = cluster_preset("VVVOC")
        model = RttMatrixLatency(topology, jitter=0.2)
        rng = random.Random(7)
        floor = model.min_delay()
        names = topology.names
        for _ in range(2000):
            src, dst = rng.choice(names), rng.choice(names)
            assert model.one_way_delay(src, dst, rng) >= floor

    def test_zero_jitter_floor(self):
        topology = cluster_preset("VVV")
        model = RttMatrixLatency(topology, jitter=0.0)
        assert model.min_delay() == INTRA_DC_RTT_MS / 2.0


class TestPinnedDriver:
    def make(self, shards=3, threads=6):
        cluster = Cluster(ClusterConfig(
            placement=PlacementConfig.ranged(6), shards=shards,
        ))
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(
                n_transactions=threads * 2, n_rows=6, n_threads=threads,
                target_rate_per_thread=10.0, group_distribution="pinned",
            ),
            "paxos",
            datacenter=cluster.topology.names[0],
        )
        return cluster, driver

    def test_threads_round_robin_over_groups(self):
        _cluster, driver = self.make()
        assert driver.pinned
        assert driver.thread_group(0) == "group-0"
        assert driver.thread_group(5) == "group-5"

    def test_thread_lanes_follow_shard_map(self):
        cluster, driver = self.make()
        lanes = driver.thread_lanes()
        for index, lane in lanes.items():
            assert lane == cluster.shard_map.lane_of(driver.thread_group(index))

    def test_pinned_channels_empty_without_cross_traffic(self):
        _cluster, driver = self.make()
        assert driver.lane_channels() == set()

    def test_outcomes_merge_in_thread_order(self):
        cluster, driver = self.make(threads=3)
        driver.install_data()
        driver.start()
        cluster.run()
        outcomes = driver.result.outcomes
        assert len(outcomes) == driver.workload.n_transactions
        per_thread = driver.thread_outcomes()
        flattened = [o for i in sorted(per_thread) for o in per_thread[i]]
        assert outcomes == flattened

    def test_every_transaction_stays_in_its_group(self):
        cluster, driver = self.make(threads=3)
        driver.install_data()
        driver.start()
        cluster.run()
        for index, results in driver.thread_outcomes().items():
            expected = driver.thread_group(index)
            for outcome in results:
                assert outcome.transaction.group == expected


class TestLaneProfileFormatting:
    def test_format_lane_profile(self):
        text = format_lane_profile({
            "windows": 3,
            "events": [10, 90, 80],
            "barrier_stalls": [1, 0, 2],
            "cross_messages": 7,
            "utilization": [10 / 180, 90 / 180, 80 / 180],
        })
        assert "3 window(s)" in text
        assert "7 cross-lane message(s)" in text
        assert "shared" in text
        # No lookahead counters, no histogram section.
        assert "lookahead" not in text

    def test_format_lookahead_histogram(self):
        from repro.sim.core import SPAN_UNBOUNDED

        text = format_lane_profile({
            "windows": 8,
            "events": [10, 90],
            "barrier_stalls": [1, 0],
            "cross_messages": 7,
            "utilization": [0.1, 0.9],
            "window_span_hist": {-3: 5, 4: 2, SPAN_UNBOUNDED: 1},
            "promise_windows": 6,
            "stalls_avoided": 11,
        })
        assert "6/8 promise-stretched window(s) (75.0%)" in text
        assert "11 barrier stall(s) avoided" in text
        assert "[0.125, 0.25)" in text
        assert "[16, 32)" in text
        assert "unbounded" in text

    def test_span_bucket_labels(self):
        from repro.harness.profiling import span_bucket_label
        from repro.sim.core import SPAN_UNBOUNDED, span_bucket

        assert span_bucket_label(span_bucket(float("inf"))) == "unbounded"
        assert span_bucket_label(span_bucket(24.0)) == "[16, 32)"
        assert span_bucket_label(span_bucket(0.15)) == "[0.125, 0.25)"
        assert SPAN_UNBOUNDED == span_bucket(float("inf"))
