"""Tests for the isolation-level axis: spec plumbing, SI-vs-1SR behaviour.

The differential suite runs the same contended workload (one row, many
threads — the Figure 7 shape) under all three levels with identical seeds:
``si`` must manufacture at least one classified write skew, while ``1sr``
and ``ssi`` must report none.
"""

import pytest

from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.errors import InvalidExperimentSpec
from repro.harness.experiment import ExperimentSpec, run_once
from repro.harness.metrics import RunMetrics, aggregate_metrics
from repro.harness.parallel import metrics_digest, run_cells


def contended_spec(isolation, protocol="paxos", transactions=120, seed_name=""):
    """One row, eight threads, mixed reads/writes: the write-skew forge."""
    return ExperimentSpec(
        name=f"iso/{isolation}{seed_name}",
        cluster=ClusterConfig(cluster_code="VVV", isolation=isolation),
        workload=WorkloadConfig(
            n_transactions=transactions, ops_per_transaction=4,
            n_attributes=4, n_rows=1, n_threads=8, read_fraction=0.5,
        ),
        protocol=protocol,
    )


class TestConfigValidation:
    def test_isolation_accepted_values(self):
        for level in ("1sr", "si", "ssi"):
            assert ClusterConfig(isolation=level).isolation == level

    def test_isolation_rejects_unknown(self):
        with pytest.raises(ValueError, match="isolation"):
            ClusterConfig(isolation="serializable")

    def test_default_is_one_copy_serializable(self):
        assert ClusterConfig().isolation == "1sr"


class TestSpecValidation:
    def test_si_rejects_leased_leader(self):
        with pytest.raises(InvalidExperimentSpec, match="leased leader"):
            contended_spec("si", protocol="leased-leader")

    def test_si_rejects_cross_group_traffic(self):
        with pytest.raises(InvalidExperimentSpec, match="single-group"):
            ExperimentSpec(
                name="iso/si/xgroup",
                cluster=ClusterConfig(
                    isolation="si",
                    placement=PlacementConfig.ranged(2, key_universe=4),
                ),
                workload=WorkloadConfig(n_rows=4, cross_group_fraction=0.2),
            )

    def test_si_rejects_queue_traffic(self):
        with pytest.raises(InvalidExperimentSpec, match="queue_fraction"):
            ExperimentSpec(
                name="iso/si/queue",
                cluster=ClusterConfig(
                    isolation="si",
                    placement=PlacementConfig.ranged(2, key_universe=4),
                ),
                workload=WorkloadConfig(n_rows=4, queue_fraction=0.2),
            )

    def test_invalid_spec_is_also_value_error(self):
        # Callers guarding with the generic type keep working.
        with pytest.raises(ValueError):
            contended_spec("si", protocol="leased-leader")

    def test_scaled_reruns_validation(self):
        spec = contended_spec("ssi")
        assert spec.scaled(10).workload.n_transactions == 10


class TestDifferentialAnomalies:
    """Same seeds, same contended workload, three isolation levels."""

    def test_si_manufactures_write_skew(self):
        result = run_once(contended_spec("si"), seed=0)
        assert result.metrics.anomalies.get("write_skew", 0) >= 1

    def test_one_sr_and_ssi_stay_clean(self):
        for isolation in ("1sr", "ssi"):
            result = run_once(contended_spec(isolation), seed=0)
            assert result.metrics.anomalies == {}

    def test_si_commits_at_least_as_many(self):
        # SI aborts only on write-write conflicts, a subset of 1SR's
        # read-set conflicts — on this workload it commits strictly more.
        one_sr = run_once(contended_spec("1sr"), seed=0)
        si = run_once(contended_spec("si"), seed=0)
        assert si.metrics.commits >= one_sr.metrics.commits

    def test_differential_across_seeds(self):
        for seed in (1, 2):
            si = run_once(contended_spec("si"), seed=seed)
            ssi = run_once(contended_spec("ssi"), seed=seed)
            assert sum(si.metrics.anomalies.values()) >= 1
            assert ssi.metrics.anomalies == {}

    def test_cp_protocol_same_differential(self):
        si = run_once(contended_spec("si", protocol="paxos-cp"), seed=0)
        ssi = run_once(contended_spec("ssi", protocol="paxos-cp"), seed=0)
        assert si.metrics.anomalies.get("write_skew", 0) >= 1
        assert ssi.metrics.anomalies == {}


class TestMetricsPlumbing:
    def test_anomalies_aggregate_by_mean_rounded_up(self):
        a = RunMetrics(protocol="paxos", n_transactions=10)
        a.anomalies = {"write_skew": 2}
        b = RunMetrics(protocol="paxos", n_transactions=10)
        b.anomalies = {"write_skew": 4, "other": 1}
        merged = aggregate_metrics([a, b])
        # Means round up: one anomalous trial must never average to zero.
        assert merged.anomalies == {"other": 1, "write_skew": 3}

    def test_parallel_digest_matches_serial(self):
        specs = [contended_spec(level, transactions=60)
                 for level in ("1sr", "si", "ssi")]
        serial = run_cells(specs, trials=2, base_seed=0, jobs=1)
        parallel = run_cells(specs, trials=2, base_seed=0, jobs=2)
        assert metrics_digest(serial) == metrics_digest(parallel)
        by_name = {r.spec.name: r for r in serial}
        assert sum(by_name["iso/si"].metrics.anomalies.values()) >= 1
        assert by_name["iso/ssi"].metrics.anomalies == {}
