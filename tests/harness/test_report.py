"""Tests for table rendering."""

from repro.harness.experiment import ExperimentResult, ExperimentSpec
from repro.harness.metrics import OpenLoopStats, RunMetrics
from repro.harness.report import (
    format_cells,
    format_comparison,
    format_open_loop,
    format_per_instance,
    format_table,
)
from repro.model import AbortReason
from tests.helpers import aborted, committed, txn


def fake_result(name="cell-a", protocol="paxos"):
    outcomes = [
        committed(txn("t1", writes={"a": 1}), position=1),
        committed(txn("t2", writes={"a": 2}), position=2, promotions=1),
        aborted(txn("t3", writes={"a": 3}), AbortReason.LOST_POSITION),
    ]
    for index, outcome in enumerate(outcomes):
        outcome.end_time = 100.0 * (index + 1)
    metrics = RunMetrics.from_outcomes(outcomes, protocol=protocol)
    spec = ExperimentSpec(name=name, protocol=protocol)
    return ExperimentResult(spec=spec, metrics=metrics,
                            per_instance={"V1": metrics})


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["col", "x"], [["a", "1"], ["bbbb", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert set(lines[1].replace("  ", " ")) <= {"-", " "}
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)


class TestFormatCells:
    def test_contains_key_statistics(self):
        text = format_cells([fake_result()])
        assert "cell-a" in text
        assert "paxos" in text
        assert "r0:1 r1:1" in text
        assert "66.7%" in text

    def test_title_prepended(self):
        text = format_cells([fake_result()], title="Figure X")
        assert text.startswith("Figure X\n")


class TestEmptyFamiliesRenderDashes:
    """Empty latency families must render ``—``, never the literal ``nan``."""

    def empty_result(self):
        metrics = RunMetrics.from_outcomes([], protocol="paxos")
        metrics.open_loop = OpenLoopStats()
        spec = ExperimentSpec(name="empty-cell")
        return ExperimentResult(spec=spec, metrics=metrics,
                                per_instance={"V1": metrics})

    def test_format_cells_never_prints_nan(self):
        text = format_cells([self.empty_result()])
        assert "nan" not in text
        assert "—" in text

    def test_format_open_loop_never_prints_nan(self):
        text = format_open_loop([self.empty_result()])
        assert "nan" not in text
        assert "—" in text
        # Rate cells drop the percent suffix too — no dangling ``—%``.
        assert "—%" not in text

    def test_format_per_instance_never_prints_nan(self):
        text = format_per_instance(self.empty_result())
        assert "nan" not in text


class TestAnomalyColumn:
    def test_clean_run_shows_placeholder(self):
        text = format_cells([fake_result()])
        assert "anomalies" in text

    def test_counts_render_sorted(self):
        result = fake_result()
        result.metrics.anomalies = {"write_skew": 2, "other": 1}
        text = format_cells([result])
        assert "other:1 write_skew:2" in text


class TestFormatPerInstance:
    def test_one_row_per_datacenter(self):
        text = format_per_instance(fake_result())
        assert "V1" in text


class TestFormatComparison:
    def test_has_paper_line_and_table(self):
        text = format_comparison("the paper says things", [fake_result()],
                                 figure="Figure 4")
        assert text.startswith("== Figure 4 ==")
        assert "paper: the paper says things" in text
        assert "cell-a" in text
