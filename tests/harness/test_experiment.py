"""Tests for the experiment runner (scaled down to stay fast)."""

from dataclasses import replace

import pytest

from repro.config import ClusterConfig, StoreConfig, WorkloadConfig
from repro.harness.experiment import ExperimentSpec, run_cell, run_once


def small_spec(protocol="paxos-cp", **workload_overrides):
    workload = dict(
        n_transactions=20, ops_per_transaction=4, n_attributes=20,
        n_threads=2, target_rate_per_thread=5.0, stagger_ms=20.0,
    )
    workload.update(workload_overrides)
    return ExperimentSpec(
        name="unit",
        cluster=ClusterConfig(cluster_code="VVV", store=StoreConfig(2.0, 4.0)),
        workload=WorkloadConfig(**workload),
        protocol=protocol,
    )


class TestRunOnce:
    def test_produces_metrics_and_outcomes(self):
        result = run_once(small_spec(), seed=1)
        assert result.metrics.n_transactions == 20
        assert 0 < result.metrics.commits <= 20
        assert len(result.outcomes) == 20
        assert result.metrics.protocol == "paxos-cp"

    def test_invariants_checked_by_default(self):
        # No exception means the checks ran clean; flip the flag and verify
        # the path is actually exercised by checking the spec.
        spec = small_spec()
        assert spec.check_invariants
        run_once(spec, seed=3)

    def test_deterministic_per_seed(self):
        first = run_once(small_spec(), seed=5)
        second = run_once(small_spec(), seed=5)
        assert first.metrics.commits == second.metrics.commits
        assert first.metrics.mean_all_latency_ms == second.metrics.mean_all_latency_ms

    def test_seeds_differ(self):
        first = run_once(small_spec(), seed=5)
        second = run_once(small_spec(), seed=6)
        difference = (
            first.metrics.mean_all_latency_ms != second.metrics.mean_all_latency_ms
            or first.metrics.commits != second.metrics.commits
        )
        assert difference

    def test_per_datacenter_instances(self):
        spec = replace(small_spec(), per_datacenter_instances=True)
        result = run_once(spec, seed=1)
        assert set(result.per_instance) == {"V1", "V2", "V3"}
        assert result.metrics.n_transactions == 60

    def test_scaled_helper(self):
        spec = small_spec().scaled(6)
        assert spec.workload.n_transactions == 6
        result = run_once(spec, seed=0)
        assert result.metrics.n_transactions == 6


class TestRunCell:
    def test_averages_trials(self):
        result = run_cell(small_spec(), trials=2, base_seed=10)
        assert result.metrics.n_transactions == 20
        assert 0 < result.metrics.commits <= 20

    def test_requires_a_trial(self):
        with pytest.raises(ValueError):
            run_cell(small_spec(), trials=0)
