"""Tests for the figure grid definitions."""

from repro.harness.figures import (
    ALL_FIGURES,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)


class TestGrids:
    def test_every_figure_defined(self):
        assert set(ALL_FIGURES) == {
            "figure4", "figure5", "figure6", "figure7", "figure8"
        }

    def test_every_cell_runs_both_protocols(self):
        for name, build in ALL_FIGURES.items():
            grid = build()
            protocols = {cell.protocol for cell in grid.cells}
            assert protocols == {"paxos", "paxos-cp"}, name

    def test_figure4_replica_counts(self):
        grid = figure4()
        sizes = sorted({len(cell.cluster.cluster_code) for cell in grid.cells})
        assert sizes == [2, 3, 4, 5]

    def test_figure5_combinations(self):
        grid = figure5()
        codes = {cell.cluster.cluster_code for cell in grid.cells}
        assert {"VV", "OV", "VVV", "COV", "VVVOC"} <= codes

    def test_figure6_attribute_sweep(self):
        grid = figure6()
        attrs = sorted({cell.workload.n_attributes for cell in grid.cells})
        assert attrs == [20, 50, 100, 250, 500]
        assert all(cell.cluster.cluster_code == "VVV" for cell in grid.cells)

    def test_figure7_rate_sweep(self):
        grid = figure7()
        rates = sorted({cell.workload.target_rate_per_thread for cell in grid.cells})
        assert rates == [0.5, 1.0, 2.0, 4.0]

    def test_figure8_per_datacenter(self):
        grid = figure8()
        assert all(cell.per_datacenter_instances for cell in grid.cells)
        assert all(cell.cluster.cluster_code == "VOC" for cell in grid.cells)

    def test_scaled_reduces_budget_everywhere(self):
        grid = figure6().scaled(25)
        assert all(cell.workload.n_transactions == 25 for cell in grid.cells)

    def test_paper_shapes_documented(self):
        for build in ALL_FIGURES.values():
            grid = build()
            assert len(grid.paper_shape) > 50
