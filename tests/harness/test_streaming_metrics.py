"""Streaming aggregates: OutcomeAggregate parity and retain_outcomes=False.

Two layers: (1) folding outcomes through :class:`OutcomeAggregate` +
``RunMetrics.from_aggregate`` must agree with the retained
``RunMetrics.from_outcomes`` path on every count-derived field, with
latency percentiles within one histogram bucket; (2) a closed-loop
:class:`WorkloadDriver` run with ``retain_outcomes=False`` must reproduce
the retained run's counts exactly while keeping no outcome lists.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.harness.experiment import ExperimentSpec, run_once
from repro.harness.metrics import (
    LatencyHistogram,
    OutcomeAggregate,
    RunMetrics,
)
from repro.model import AbortReason
from tests.helpers import aborted, committed, txn

RATIO = LatencyHistogram.bucket_ratio()


def outcome(tid, status="commit", promotions=0, begin=0.0, end=100.0,
            reason=AbortReason.LOST_POSITION):
    t = txn(tid, writes={"a": 1})
    if status == "commit":
        result = committed(t, position=1, promotions=promotions)
    else:
        result = aborted(t, reason)
        result.promotions = promotions
    result.begin_time = begin
    result.end_time = end
    return result


def sample_outcomes():
    return [
        outcome("t1", end=100.0),
        outcome("t2", end=200.0, promotions=1),
        outcome("t3", "abort", end=900.0),
        outcome("t4", end=50.0),
        outcome("t5", "abort", end=10.0, reason=AbortReason.TIMEOUT),
        outcome("t6", end=400.0, promotions=1),
    ]


class TestOutcomeAggregateParity:
    def test_counts_match_from_outcomes_exactly(self):
        outcomes = sample_outcomes()
        exact = RunMetrics.from_outcomes(outcomes, protocol="paxos")
        aggregate = OutcomeAggregate()
        for o in outcomes:
            aggregate.absorb(o)
        streamed = RunMetrics.from_aggregate(aggregate, protocol="paxos")
        assert streamed.n_transactions == exact.n_transactions
        assert streamed.commits == exact.commits
        assert streamed.aborts_by_reason == exact.aborts_by_reason
        assert streamed.commits_by_round == exact.commits_by_round
        assert streamed.max_promotions == exact.max_promotions
        assert streamed.duration_ms == exact.duration_ms
        assert streamed.latency_by_round == exact.latency_by_round

    def test_latency_summaries_within_bucket(self):
        outcomes = sample_outcomes()
        exact = RunMetrics.from_outcomes(outcomes)
        streamed = RunMetrics.from_aggregate(
            OutcomeAggregate() if not outcomes else _fold(outcomes)
        )
        assert math.isclose(
            streamed.commit_latency.mean_ms, exact.commit_latency.mean_ms
        )
        assert streamed.commit_latency.max_ms == exact.commit_latency.max_ms
        for attr in ("p95_ms", "p99_ms", "p999_ms"):
            e = getattr(exact.commit_latency, attr)
            a = getattr(streamed.commit_latency, attr)
            assert e / RATIO <= a <= e * RATIO, (attr, e, a)

    def test_merge_in_order_reproduces_serial_fold(self):
        outcomes = sample_outcomes()
        serial = _fold(outcomes)
        left, right = _fold(outcomes[:3]), _fold(outcomes[3:])
        left.merge(right)
        assert repr(RunMetrics.from_aggregate(left)) == repr(
            RunMetrics.from_aggregate(serial)
        )

    def test_copy_is_independent(self):
        aggregate = _fold(sample_outcomes())
        clone = aggregate.copy()
        clone.absorb(outcome("t9", end=5_000.0))
        assert clone.n == aggregate.n + 1
        assert aggregate.commit_latency.max_value < 5_000.0

    def test_list_compatible_append(self):
        aggregate = OutcomeAggregate()
        aggregate.append(outcome("t1"))
        assert aggregate.n == 1 and aggregate.commits == 1


def _fold(outcomes) -> OutcomeAggregate:
    aggregate = OutcomeAggregate()
    for o in outcomes:
        aggregate.absorb(o)
    return aggregate


# ----------------------------------------------------------------------
# Closed-loop driver in aggregate-only mode
# ----------------------------------------------------------------------


def closed_spec(**workload_overrides) -> ExperimentSpec:
    workload = dict(n_transactions=40, n_threads=4, target_rate_per_thread=8.0)
    workload.update(workload_overrides)
    return ExperimentSpec(
        name="closed",
        cluster=ClusterConfig(placement=PlacementConfig.ranged(4)),
        workload=WorkloadConfig(n_rows=4, **workload),
        protocol="paxos-cp",
        check_invariants=False,
        retain_outcomes=False,
    )


class TestClosedLoopStreaming:
    def test_matches_retained_run(self):
        streaming_spec = closed_spec()
        retained_spec = replace(
            streaming_spec, retain_outcomes=True, check_invariants=True
        )
        streaming = run_once(streaming_spec, seed=4)
        retained = run_once(retained_spec, seed=4)
        assert streaming.outcomes == []
        assert len(retained.outcomes) == 40
        s, r = streaming.metrics, retained.metrics
        assert s.n_transactions == r.n_transactions
        assert s.commits == r.commits
        assert s.aborts_by_reason == r.aborts_by_reason
        assert s.commits_by_round == r.commits_by_round
        assert s.duration_ms == r.duration_ms
        assert math.isclose(s.commit_latency.mean_ms, r.commit_latency.mean_ms)
        assert math.isclose(s.mean_all_latency_ms, r.mean_all_latency_ms)
        p50_exact = r.commit_latency.p50_ms
        assert p50_exact / RATIO <= s.commit_latency.p50_ms <= p50_exact * RATIO

    def test_pinned_mode_streams_per_thread(self):
        streaming_spec = closed_spec(group_distribution="pinned")
        retained_spec = replace(
            streaming_spec, retain_outcomes=True, check_invariants=True
        )
        streaming = run_once(streaming_spec, seed=4)
        retained = run_once(retained_spec, seed=4)
        assert streaming.metrics.commits == retained.metrics.commits
        assert streaming.metrics.commits_by_round == retained.metrics.commits_by_round

    def test_streaming_with_invariants_is_rejected(self):
        # The conflict is caught at spec construction, not at run time.
        with pytest.raises(ValueError, match="retain_outcomes"):
            replace(closed_spec(), check_invariants=True)
