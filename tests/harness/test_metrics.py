"""Tests for metrics aggregation."""

import math

from repro.harness.metrics import LogStats, RunMetrics, aggregate_metrics
from repro.model import AbortReason
from tests.helpers import aborted, committed, entry, txn


def outcome(tid, status="commit", promotions=0, begin=0.0, end=100.0,
            reason=AbortReason.LOST_POSITION):
    t = txn(tid, writes={"a": 1})
    if status == "commit":
        result = committed(t, position=1, promotions=promotions)
    else:
        result = aborted(t, reason)
        result.promotions = promotions
    result.begin_time = begin
    result.end_time = end
    return result


class TestRunMetrics:
    def test_counts_commits_and_aborts(self):
        metrics = RunMetrics.from_outcomes([
            outcome("t1"), outcome("t2", "abort"), outcome("t3"),
        ], protocol="paxos")
        assert metrics.n_transactions == 3
        assert metrics.commits == 2
        assert metrics.aborts == 1
        assert metrics.commit_rate == 2 / 3
        assert metrics.aborts_by_reason == {"lost_position": 1}

    def test_commits_by_promotion_round(self):
        metrics = RunMetrics.from_outcomes([
            outcome("t1", promotions=0),
            outcome("t2", promotions=0),
            outcome("t3", promotions=1),
            outcome("t4", promotions=3),
        ])
        assert metrics.commits_by_round == {0: 2, 1: 1, 3: 1}
        assert metrics.max_promotions == 3

    def test_latency_statistics(self):
        metrics = RunMetrics.from_outcomes([
            outcome("t1", end=100.0),
            outcome("t2", end=200.0),
            outcome("t3", "abort", end=900.0),
        ])
        assert metrics.mean_commit_latency_ms == 150.0
        assert metrics.median_commit_latency_ms == 150.0
        assert metrics.mean_all_latency_ms == 400.0

    def test_latency_by_round(self):
        metrics = RunMetrics.from_outcomes([
            outcome("t1", promotions=0, end=100.0),
            outcome("t2", promotions=1, end=300.0),
        ])
        assert metrics.latency_by_round == {0: 100.0, 1: 300.0}

    def test_empty_outcomes(self):
        metrics = RunMetrics.from_outcomes([])
        assert metrics.commits == 0
        assert math.isnan(metrics.mean_commit_latency_ms)
        assert math.isnan(metrics.commit_rate)

    def test_log_stats(self):
        log = {
            1: entry(txn("t1", writes={"a": 1})),
            2: entry(txn("t2", writes={"a": 2}), txn("t3", writes={"b": 1})),
        }
        stats = LogStats.from_log(log)
        assert stats.positions == 2
        assert stats.combined_entries == 1
        assert stats.combined_transactions == 1
        assert stats.max_entry_size == 2


class TestAggregate:
    def test_single_trial_passthrough(self):
        metrics = RunMetrics.from_outcomes([outcome("t1")])
        assert aggregate_metrics([metrics]) is metrics

    def test_averaging(self):
        first = RunMetrics.from_outcomes(
            [outcome("t1"), outcome("t2", "abort")], protocol="paxos"
        )
        second = RunMetrics.from_outcomes(
            [outcome("t3"), outcome("t4")], protocol="paxos"
        )
        merged = aggregate_metrics([first, second])
        assert merged.n_transactions == 2
        assert merged.commits == 2  # round(1.5) = 2 (banker's -> 2)
        assert merged.protocol == "paxos"

    def test_round_histograms_merge(self):
        first = RunMetrics.from_outcomes([outcome("t1", promotions=1)])
        second = RunMetrics.from_outcomes([outcome("t2", promotions=2)])
        merged = aggregate_metrics([first, second])
        assert set(merged.commits_by_round) == {1, 2}
        assert merged.max_promotions == 2

    def test_empty_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            aggregate_metrics([])


class TestNoopStats:
    def test_log_stats_counts_noop_entries(self):
        from repro.wal.entry import LogEntry

        log = {
            1: entry(txn("t1", writes={"a": 1})),
            2: LogEntry.noop(),
        }
        stats = LogStats.from_log(log)
        assert stats.positions == 2
        assert stats.noop_entries == 1
        assert stats.combined_entries == 0
