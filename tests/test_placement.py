"""Properties of the key → entity-group map (:class:`repro.model.Placement`)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import PlacementConfig
from repro.model import Placement

keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=24
)
group_counts = st.integers(min_value=1, max_value=16)


class TestPlacementConfig:
    def test_rejects_nonpositive_group_count(self):
        with pytest.raises(ValueError):
            PlacementConfig(n_groups=0)

    def test_range_requires_key_universe(self):
        with pytest.raises(ValueError):
            PlacementConfig(n_groups=2, assignment="range")

    def test_range_requires_universe_at_least_groups(self):
        with pytest.raises(ValueError):
            PlacementConfig(n_groups=4, assignment="range", key_universe=3)


class TestRouting:
    @given(key=keys, n_groups=group_counts)
    def test_every_key_routes_to_exactly_one_group(self, key, n_groups):
        placement = Placement(PlacementConfig(n_groups=n_groups))
        group = placement.group_of(key)
        assert group in placement.groups
        assert len(placement.groups) == n_groups

    @given(key=keys, n_groups=group_counts)
    def test_routing_is_stable_across_calls_and_instances(self, key, n_groups):
        config = PlacementConfig(n_groups=n_groups)
        first = Placement(config)
        assert first.group_of(key) == first.group_of(key)
        # A fresh Placement over the same config must agree: routing depends
        # only on (key, config), never on call order, process, or seed.
        assert Placement(config).group_of(key) == first.group_of(key)

    @given(
        n_groups=st.integers(min_value=1, max_value=8),
        universe_factor=st.integers(min_value=1, max_value=5),
    )
    def test_range_assignment_contiguous_and_covering(self, n_groups, universe_factor):
        universe = n_groups * universe_factor
        placement = Placement(PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=universe,
        ))
        indices = [placement.group_index(f"row{k}") for k in range(universe)]
        # Non-decreasing blocks covering every group: no empty groups.
        assert indices == sorted(indices)
        assert set(indices) == set(range(n_groups))

    def test_range_falls_back_to_hash_outside_universe(self):
        placement = Placement(PlacementConfig(
            n_groups=4, assignment="range", key_universe=4,
        ))
        for key in ("alice", "row99"):
            group = placement.group_of(key)
            assert group in placement.groups
            assert group == placement.group_of(key)

    def test_single_group_routes_everything_to_group_0(self):
        placement = Placement.single()
        assert placement.group_of("anything") == "group-0"
        assert placement.groups == ("group-0",)


class TestPartitioning:
    @given(key_list=st.lists(keys, max_size=30), n_groups=group_counts)
    def test_split_by_group_partitions_all_keys(self, key_list, n_groups):
        placement = Placement(PlacementConfig(n_groups=n_groups))
        partition = placement.split_by_group(key_list)
        assert set(partition) == set(placement.groups)
        rejoined = [key for keys_ in partition.values() for key in keys_]
        assert sorted(rejoined) == sorted(key_list)
        for group, group_keys in partition.items():
            assert all(placement.group_of(key) == group for key in group_keys)

    def test_place_rows_routes_each_row_once(self):
        placement = Placement(PlacementConfig(
            n_groups=2, assignment="range", key_universe=4,
        ))
        rows = {f"row{k}": {"a": k} for k in range(4)}
        images = placement.place_rows(rows)
        assert images == {
            "group-0": {"row0": {"a": 0}, "row1": {"a": 1}},
            "group-1": {"row2": {"a": 2}, "row3": {"a": 3}},
        }
