"""Tests for datacenters, regions, and cluster presets."""

import pytest

from repro.errors import UnknownDatacenter
from repro.net.topology import (
    CALIFORNIA,
    OREGON,
    PAPER_RTT_MS,
    VIRGINIA,
    Datacenter,
    Topology,
    cluster_preset,
)


class TestTopology:
    def test_requires_datacenters(self):
        with pytest.raises(ValueError):
            Topology([])

    def test_rejects_duplicate_names(self):
        dc = Datacenter("A", VIRGINIA)
        with pytest.raises(ValueError):
            Topology([dc, Datacenter("A", OREGON)])

    def test_lookup(self):
        topology = Topology([Datacenter("A", VIRGINIA)])
        assert topology.get("A").region == VIRGINIA
        with pytest.raises(UnknownDatacenter):
            topology.get("B")

    def test_majority(self):
        for size, majority in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3)]:
            topology = Topology([
                Datacenter(f"D{i}", VIRGINIA) for i in range(size)
            ])
            assert topology.majority == majority, size


class TestClusterPreset:
    def test_paper_combinations(self):
        assert cluster_preset("VV").names == ["V1", "V2"]
        assert cluster_preset("VVV").names == ["V1", "V2", "V3"]
        assert cluster_preset("OV").names == ["O", "V1"]
        assert cluster_preset("COV").names == ["C", "O", "V1"]
        assert cluster_preset("VVVOC").names == ["V1", "V2", "V3", "O", "C"]

    def test_regions_assigned(self):
        topology = cluster_preset("COV")
        assert topology.region_of("C") == CALIFORNIA
        assert topology.region_of("O") == OREGON
        assert topology.region_of("V1") == VIRGINIA

    def test_at_most_three_virginia_zones(self):
        with pytest.raises(ValueError):
            cluster_preset("VVVV")

    def test_unknown_letter_rejected(self):
        with pytest.raises(ValueError):
            cluster_preset("VX")

    def test_lowercase_accepted(self):
        assert cluster_preset("cov").names == ["C", "O", "V1"]


class TestPaperRtts:
    def test_matrix_matches_section6(self):
        assert PAPER_RTT_MS[frozenset({VIRGINIA})] == 1.5
        assert PAPER_RTT_MS[frozenset({VIRGINIA, OREGON})] == 90.0
        assert PAPER_RTT_MS[frozenset({VIRGINIA, CALIFORNIA})] == 90.0
        assert PAPER_RTT_MS[frozenset({OREGON, CALIFORNIA})] == 20.0
