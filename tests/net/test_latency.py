"""Tests for latency models."""

import random

import pytest

from repro.net.latency import ConstantLatency, RttMatrixLatency
from repro.net.topology import cluster_preset


class TestConstantLatency:
    def test_fixed_delay(self):
        model = ConstantLatency(3.0)
        rng = random.Random(0)
        assert model.one_way_delay("A", "B", rng) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestRttMatrixLatency:
    def setup_method(self):
        self.topology = cluster_preset("COV")

    def test_base_rtt_uses_paper_matrix(self):
        model = RttMatrixLatency(self.topology, jitter=0.0)
        assert model.base_rtt("C", "O") == 20.0
        assert model.base_rtt("C", "V1") == 90.0
        assert model.base_rtt("O", "V1") == 90.0

    def test_same_datacenter_uses_intra_dc_rtt(self):
        model = RttMatrixLatency(self.topology, jitter=0.0)
        assert model.base_rtt("C", "C") == 0.3

    def test_one_way_is_half_rtt_without_jitter(self):
        model = RttMatrixLatency(self.topology, jitter=0.0)
        rng = random.Random(0)
        assert model.one_way_delay("C", "O", rng) == 10.0

    def test_jitter_stays_near_base(self):
        model = RttMatrixLatency(self.topology, jitter=0.1)
        rng = random.Random(1)
        delays = [model.one_way_delay("C", "V1", rng) for _ in range(500)]
        base = 45.0
        assert all(0.5 * base <= d <= 1.6 * base for d in delays)
        mean = sum(delays) / len(delays)
        assert abs(mean - base) < 2.0

    def test_jitter_floor_prevents_tiny_delays(self):
        model = RttMatrixLatency(self.topology, jitter=0.2)
        rng = random.Random(2)
        base = 10.0  # C-O one way
        delays = [model.one_way_delay("C", "O", rng) for _ in range(1000)]
        assert min(delays) >= 0.6 * base - 1e-9

    def test_symmetric(self):
        model = RttMatrixLatency(self.topology, jitter=0.0)
        rng = random.Random(0)
        assert model.one_way_delay("C", "O", rng) == model.one_way_delay("O", "C", rng)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            RttMatrixLatency(self.topology, jitter=0.7)

    def test_missing_pair_reported(self):
        model = RttMatrixLatency(self.topology, rtt_ms={}, jitter=0.0)
        with pytest.raises(KeyError):
            model.base_rtt("C", "O")

    def test_three_virginia_zones_use_same_region_rtt(self):
        topology = cluster_preset("VVV")
        model = RttMatrixLatency(topology, jitter=0.0)
        assert model.base_rtt("V1", "V2") == 1.5
        assert model.base_rtt("V2", "V3") == 1.5
