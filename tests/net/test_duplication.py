"""Tests for message duplication (UDP semantics) and vote de-duplication."""

import pytest

from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.node import Node
from repro.net.topology import cluster_preset
from tests.conftest import make_cluster, run_txn


def make_net(env, duplicate=0.5):
    topology = cluster_preset("VVV")
    return Network(env, topology, ConstantLatency(1.0),
                   duplicate_probability=duplicate)


class TestDuplication:
    def test_duplicates_delivered_twice(self, env):
        network = make_net(env, duplicate=0.999)
        received = []
        server = Node(env, network, "server", "V1")
        server.on("ping", lambda msg: received.append(msg.msg_id))
        client = Node(env, network, "client", "V2")
        client.send("server", "ping")
        env.run()
        assert len(received) == 2
        assert received[0] == received[1]
        assert network.stats.duplicated == 1

    def test_zero_probability_never_duplicates(self, env):
        network = make_net(env, duplicate=0.0)
        received = []
        server = Node(env, network, "server", "V1")
        server.on("ping", lambda msg: received.append(msg.msg_id))
        client = Node(env, network, "client", "V2")
        for _ in range(100):
            client.send("server", "ping")
        env.run()
        assert len(received) == 100

    def test_invalid_probability_rejected(self, env):
        with pytest.raises(ValueError):
            make_net(env, duplicate=1.0)

    def test_gather_counts_each_source_once(self, env):
        """A duplicated reply must not satisfy a 2-of-3 quorum by itself."""
        network = make_net(env, duplicate=0.999)
        server = Node(env, network, "server", "V1")
        server.on("vote", lambda msg: "ok")
        client = Node(env, network, "client", "V2")

        def proc():
            gather = client.request_many(
                ["server"], "vote",
                enough=lambda rs: len(rs) >= 2,
                timeout_ms=100, grace_ms=0.0,
            )
            responses = yield gather
            return [r.src for r in responses]

        process = env.process(proc())
        env.run()
        # Only one logical source answered, however many copies arrived.
        assert process.value == ["server"]


class TestPaxosUnderDuplication:
    @pytest.mark.parametrize("protocol", ["paxos", "paxos-cp"])
    def test_commits_stay_serializable_with_heavy_duplication(self, protocol):
        cluster = make_cluster(seed=13)
        cluster.network.duplicate_probability = 0.4
        cluster.preload("g", {"row0": {f"a{i}": "init" for i in range(5)}})
        outcomes = []
        for index in range(4):
            client = cluster.add_client(
                cluster.topology.names[index % 3], protocol=protocol
            )
            outcome = run_txn(
                cluster, client, "g",
                reads=[("row0", f"a{index}")],
                writes=[("row0", f"a{index}", f"v{index}")],
            )
            outcomes.append(outcome)
        assert all(o.committed for o in outcomes)
        cluster.check_invariants("g", outcomes)
