"""Tests for the unreliable network."""

import pytest

from repro.errors import UnknownDatacenter
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.node import Node
from repro.net.topology import cluster_preset


def make_net(env, loss=0.0, delay=1.0, code="COV"):
    topology = cluster_preset(code)
    return Network(env, topology, ConstantLatency(delay), loss_probability=loss)


def wire(env, network):
    received = []
    nodes = {}
    for dc in network.topology.names:
        node = Node(env, network, f"node:{dc}", dc)
        node.on("ping", lambda msg, d=dc: received.append((d, msg.payload, env.now)))
        nodes[dc] = node
    return nodes, received


class TestDelivery:
    def test_message_arrives_after_delay(self, env):
        network = make_net(env, delay=2.5)
        nodes, received = wire(env, network)
        nodes["C"].send("node:O", "ping", payload="hello")
        env.run()
        assert received == [("O", "hello", 2.5)]

    def test_unknown_destination_raises(self, env):
        network = make_net(env)
        nodes, _ = wire(env, network)
        with pytest.raises(UnknownDatacenter):
            nodes["C"].send("node:nowhere", "ping")

    def test_duplicate_node_name_rejected(self, env):
        network = make_net(env)
        Node(env, network, "dup", "C")
        with pytest.raises(ValueError):
            Node(env, network, "dup", "O")

    def test_unknown_message_type_dropped(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        nodes["C"].send("node:O", "no-such-handler", payload=1)
        env.run()  # must not raise
        assert received == []

    def test_stats_count_sends_and_deliveries(self, env):
        network = make_net(env)
        nodes, _ = wire(env, network)
        for _ in range(3):
            nodes["C"].send("node:O", "ping")
        env.run()
        assert network.stats.sent == 3
        assert network.stats.delivered == 3
        assert network.stats.by_type["ping"] == 3


class TestLoss:
    def test_zero_loss_delivers_everything(self, env):
        network = make_net(env, loss=0.0)
        nodes, received = wire(env, network)
        for _ in range(50):
            nodes["C"].send("node:O", "ping")
        env.run()
        assert len(received) == 50

    def test_loss_probability_drops_fraction(self, env):
        network = make_net(env, loss=0.5)
        nodes, received = wire(env, network)
        for _ in range(400):
            nodes["C"].send("node:O", "ping")
        env.run()
        assert 120 < len(received) < 280
        assert network.stats.dropped_loss == 400 - len(received)

    def test_invalid_loss_rejected(self, env):
        with pytest.raises(ValueError):
            make_net(env, loss=1.0)


class TestOutages:
    def test_down_datacenter_receives_nothing(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        network.take_down("O")
        nodes["C"].send("node:O", "ping")
        env.run()
        assert received == []
        assert network.stats.dropped_outage == 1

    def test_down_datacenter_sends_nothing(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        network.take_down("C")
        nodes["C"].send("node:O", "ping")
        env.run()
        assert received == []

    def test_bring_up_restores_delivery(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        network.take_down("O")
        network.bring_up("O")
        nodes["C"].send("node:O", "ping")
        env.run()
        assert len(received) == 1

    def test_outage_during_flight_drops_message(self, env):
        network = make_net(env, delay=5.0)
        nodes, received = wire(env, network)
        nodes["C"].send("node:O", "ping")
        env.run(until=1.0)
        network.take_down("O")
        env.run()
        assert received == []

    def test_is_down_flag(self, env):
        network = make_net(env)
        network.take_down("O")
        assert network.is_down("O")
        assert not network.is_down("C")


class TestPartitions:
    def test_severed_link_blocks_both_directions(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        network.sever("C", "O")
        nodes["C"].send("node:O", "ping")
        nodes["O"].send("node:C", "ping")
        env.run()
        assert received == []
        assert network.stats.dropped_partition == 2

    def test_other_links_unaffected(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        network.sever("C", "O")
        nodes["C"].send("node:V1", "ping")
        env.run()
        assert [r[0] for r in received] == ["V1"]

    def test_heal_restores_link(self, env):
        network = make_net(env)
        nodes, received = wire(env, network)
        network.sever("C", "O")
        network.heal("C", "O")
        nodes["C"].send("node:O", "ping")
        env.run()
        assert len(received) == 1
