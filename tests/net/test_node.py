"""Tests for request/response correlation and quorum gathering."""

import pytest

from repro.net.latency import ConstantLatency
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Gather, Node
from repro.net.topology import cluster_preset


def build(env, delay=1.0, loss=0.0):
    topology = cluster_preset("VVVOC")
    network = Network(env, topology, ConstantLatency(delay), loss_probability=loss)
    return network


class TestMessageEnvelope:
    def test_reply_swaps_endpoints_and_echoes_request_id(self):
        msg = Message(src="a", dst="b", type="read", payload=1, request_id=7)
        reply = msg.reply("value")
        assert reply.src == "b" and reply.dst == "a"
        assert reply.request_id == 7
        assert reply.is_response
        assert reply.type == "read.response"

    def test_reply_to_fire_and_forget_rejected(self):
        msg = Message(src="a", dst="b", type="apply")
        with pytest.raises(ValueError):
            msg.reply(None)

    def test_message_ids_unique(self):
        first = Message(src="a", dst="b", type="t")
        second = Message(src="a", dst="b", type="t")
        assert first.msg_id != second.msg_id


class TestRequestResponse:
    def test_sync_handler_reply(self, env):
        network = build(env)
        server = Node(env, network, "server", "V1")
        client = Node(env, network, "client", "V2")
        server.on("double", lambda msg: msg.payload * 2)

        def proc():
            responses = yield client.request("server", "double", 21)
            return responses[0].payload

        process = env.process(proc())
        env.run()
        assert process.value == 42

    def test_generator_handler_reply(self, env):
        network = build(env)
        server = Node(env, network, "server", "V1")
        client = Node(env, network, "client", "V2")

        def handler(msg):
            yield env.timeout(5.0)
            return msg.payload + 1

        server.on("inc", handler)

        def proc():
            responses = yield client.request("server", "inc", 1)
            return (responses[0].payload, env.now)

        process = env.process(proc())
        env.run()
        value, finished = process.value
        assert value == 2
        assert finished == 1.0 + 5.0 + 1.0  # out + service + back

    def test_handler_exception_escapes_loudly(self, env):
        network = build(env)
        server = Node(env, network, "server", "V1")
        client = Node(env, network, "client", "V2")

        def handler(msg):
            yield env.timeout(1.0)
            raise RuntimeError("handler blew up")

        server.on("bad", handler)

        def proc():
            yield client.request("server", "bad", None, timeout_ms=50)

        env.process(proc())
        with pytest.raises(RuntimeError, match="handler blew up"):
            env.run()

    def test_duplicate_handler_registration_rejected(self, env):
        network = build(env)
        node = Node(env, network, "n", "V1")
        node.on("x", lambda m: None)
        with pytest.raises(ValueError):
            node.on("x", lambda m: None)

    def test_down_node_does_not_reply(self, env):
        network = build(env)
        server = Node(env, network, "server", "V1")
        client = Node(env, network, "client", "V2")

        def handler(msg):
            yield env.timeout(1.0)
            server.down = True
            return "too late"

        server.on("q", handler)

        def proc():
            responses = yield client.request("server", "q", None, timeout_ms=100)
            return responses

        process = env.process(proc())
        env.run()
        assert process.value == []


class TestGather:
    def make_servers(self, env, network, delays):
        """Servers replying 'ok' after per-server service delays."""
        for index, (dc, service_delay) in enumerate(delays):
            node = Node(env, network, f"s{index}", dc)

            def handler(msg, d=service_delay):
                yield env.timeout(d)
                return "ok"

            node.on("vote", handler)
        return [f"s{i}" for i in range(len(delays))]

    def test_completes_when_all_respond(self, env):
        network = build(env)
        servers = self.make_servers(env, network, [("V1", 0), ("V2", 0), ("V3", 0)])
        client = Node(env, network, "client", "V1")

        def proc():
            responses = yield client.request_many(servers, "vote", timeout_ms=1000)
            return len(responses)

        process = env.process(proc())
        env.run()
        assert process.value == 3

    def test_quorum_plus_grace_cuts_off_stragglers(self, env):
        network = build(env)
        # Two fast servers, one very slow.
        servers = self.make_servers(env, network, [("V1", 0), ("V2", 0), ("V3", 500)])
        client = Node(env, network, "client", "V1")

        def proc():
            gather = client.request_many(
                servers, "vote",
                enough=lambda rs: len(rs) >= 2,
                timeout_ms=2000, grace_ms=3.0,
            )
            responses = yield gather
            return (len(responses), env.now)

        process = env.process(proc())
        env.run()
        count, finished = process.value
        assert count == 2
        assert finished < 10.0  # did not wait for the 500 ms straggler

    def test_grace_window_collects_near_ties(self, env):
        network = build(env)
        servers = self.make_servers(env, network, [("V1", 0), ("V2", 0.5), ("V3", 1.0)])
        client = Node(env, network, "client", "V1")

        def proc():
            gather = client.request_many(
                servers, "vote",
                enough=lambda rs: len(rs) >= 2,
                timeout_ms=2000, grace_ms=5.0,
            )
            responses = yield gather
            return len(responses)

        process = env.process(proc())
        env.run()
        assert process.value == 3

    def test_timeout_returns_partial_set(self, env):
        network = build(env)
        servers = self.make_servers(env, network, [("V1", 0), ("V2", 5000), ("V3", 5000)])
        client = Node(env, network, "client", "V1")

        def proc():
            gather = client.request_many(
                servers, "vote",
                enough=lambda rs: len(rs) >= 2,
                timeout_ms=100, grace_ms=0.0,
            )
            responses = yield gather
            return (len(responses), env.now)

        process = env.process(proc())
        env.run()
        count, finished = process.value
        assert count == 1
        assert finished >= 100

    def test_late_responses_after_completion_ignored(self, env):
        network = build(env)
        servers = self.make_servers(env, network, [("V1", 0), ("V2", 50)])
        client = Node(env, network, "client", "V1")

        def proc():
            gather = client.request_many(
                servers, "vote",
                enough=lambda rs: len(rs) >= 1,
                timeout_ms=2000, grace_ms=0.0,
            )
            responses = yield gather
            return list(responses)

        process = env.process(proc())
        env.run()  # the slow reply arrives after completion; must be dropped
        assert len(process.value) == 1

    def test_zero_expected_completes_via_timeout(self, env):
        gather = Gather(env, expected=3, enough=None, timeout_ms=10, grace_ms=0)
        env.run()
        assert gather.triggered
        assert gather.value == []
