"""Tests for the latency-modelled store accessor."""

import pytest

from repro.errors import RowVersionError
from repro.kvstore.service import StoreAccessor, StoreLatencyModel
from repro.kvstore.store import MultiVersionStore


def make_accessor(env, low=2.0, high=2.0):
    store = MultiVersionStore("svc-test")
    return StoreAccessor(env, store, latency=StoreLatencyModel(low, high)), store


class TestLatencyModel:
    def test_instant_model_is_zero(self):
        import random

        model = StoreLatencyModel.instant()
        assert model.draw(random.Random(0)) == 0.0

    def test_draw_within_range(self):
        import random

        model = StoreLatencyModel(3.0, 9.0)
        rng = random.Random(0)
        for _ in range(200):
            assert 3.0 <= model.draw(rng) <= 9.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            StoreLatencyModel(5.0, 2.0)
        with pytest.raises(ValueError):
            StoreLatencyModel(-1.0, 2.0)


class TestAccessor:
    def test_operations_take_time(self, env):
        accessor, _store = make_accessor(env, 2.0, 2.0)

        def proc():
            yield accessor.write("k", {"a": 1})
            version = yield accessor.read("k")
            return (env.now, version.get("a"))

        process = env.process(proc())
        env.run()
        finished, value = process.value
        assert finished == 4.0
        assert value == 1

    def test_mutation_happens_at_completion_not_submission(self, env):
        accessor, store = make_accessor(env, 5.0, 5.0)

        def writer():
            yield accessor.write("k", {"a": 1})

        env.process(writer())
        env.run(until=2.0)
        assert store.read("k") is None  # still in flight
        env.run()
        assert store.read("k").get("a") == 1

    def test_errors_flow_to_waiter(self, env):
        accessor, store = make_accessor(env, 1.0, 1.0)
        store.write("k", {"a": 1}, timestamp=10)

        def proc():
            try:
                yield accessor.write("k", {"a": 2}, timestamp=5)
            except RowVersionError:
                return "rejected"

        process = env.process(proc())
        env.run()
        assert process.value == "rejected"

    def test_check_and_write_deferred(self, env):
        accessor, store = make_accessor(env, 1.0, 1.0)

        def proc():
            ok = yield accessor.check_and_write("k", "flag", None, {"flag": 1})
            not_ok = yield accessor.check_and_write("k", "flag", None, {"flag": 2})
            return ok, not_ok

        process = env.process(proc())
        env.run()
        assert process.value == (True, False)

    def test_concurrent_operations_interleave_by_latency(self, env):
        """A slow in-flight op does not block a fast one (no global lock)."""
        store = MultiVersionStore("interleave")
        slow = StoreAccessor(env, store, latency=StoreLatencyModel(10.0, 10.0),
                             rng_stream="slow")
        fast = StoreAccessor(env, store, latency=StoreLatencyModel(1.0, 1.0),
                             rng_stream="fast")
        order = []

        def slow_proc():
            yield slow.write("k", {"a": "slow"})
            order.append(("slow", env.now))

        def fast_proc():
            yield fast.write("j", {"a": "fast"})
            order.append(("fast", env.now))

        env.process(slow_proc())
        env.process(fast_proc())
        env.run()
        assert order == [("fast", 1.0), ("slow", 10.0)]

    def test_read_attribute_deferred(self, env):
        accessor, store = make_accessor(env, 1.0, 1.0)
        store.write("k", {"a": 7}, timestamp=1)

        def proc():
            value = yield accessor.read_attribute("k", "a")
            missing = yield accessor.read_attribute("k", "zz", default="d")
            return value, missing

        process = env.process(proc())
        env.run()
        assert process.value == (7, "d")
