"""Tests for the multi-version store's three atomic operations (§2.2)."""

import pytest

from repro.errors import RowVersionError
from repro.kvstore.store import MultiVersionStore


@pytest.fixture
def store():
    return MultiVersionStore("test")


class TestRead:
    def test_missing_row_returns_none(self, store):
        assert store.read("nope") is None

    def test_latest_version_by_default(self, store):
        store.write("k", {"a": 1}, timestamp=1)
        store.write("k", {"a": 2}, timestamp=5)
        assert store.read("k").get("a") == 2

    def test_read_at_timestamp_returns_most_recent_at_or_before(self, store):
        store.write("k", {"a": 1}, timestamp=1)
        store.write("k", {"a": 2}, timestamp=5)
        assert store.read("k", timestamp=1).get("a") == 1
        assert store.read("k", timestamp=3).get("a") == 1
        assert store.read("k", timestamp=5).get("a") == 2
        assert store.read("k", timestamp=99).get("a") == 2

    def test_read_before_first_version_returns_none(self, store):
        store.write("k", {"a": 1}, timestamp=10)
        assert store.read("k", timestamp=5) is None

    def test_read_attribute_defaults(self, store):
        assert store.read_attribute("k", "a", default="d") == "d"
        store.write("k", {"a": 1}, timestamp=1)
        assert store.read_attribute("k", "b", default="d") == "d"
        assert store.read_attribute("k", "a") == 1


class TestWrite:
    def test_auto_timestamp_starts_at_one(self, store):
        assert store.write("k", {"a": 1}) == 1

    def test_auto_timestamp_exceeds_existing(self, store):
        store.write("k", {"a": 1}, timestamp=10)
        assert store.write("k", {"a": 2}) == 11

    def test_write_below_latest_rejected(self, store):
        store.write("k", {"a": 1}, timestamp=5)
        with pytest.raises(RowVersionError) as info:
            store.write("k", {"a": 2}, timestamp=3)
        assert info.value.existing == 5

    def test_write_at_existing_timestamp_rejected(self, store):
        store.write("k", {"a": 1}, timestamp=5)
        with pytest.raises(RowVersionError):
            store.write("k", {"a": 2}, timestamp=5)

    def test_versions_merge_previous_image(self, store):
        store.write("k", {"a": 1, "b": 1}, timestamp=1)
        store.write("k", {"b": 2}, timestamp=2)
        version = store.read("k")
        assert version.get("a") == 1  # untouched attribute carried forward
        assert version.get("b") == 2

    def test_old_versions_immutable_after_merge(self, store):
        store.write("k", {"a": 1}, timestamp=1)
        store.write("k", {"a": 2}, timestamp=2)
        assert store.read("k", timestamp=1).get("a") == 1

    def test_versions_listing_sorted(self, store):
        store.write("k", {"a": 1}, timestamp=2)
        store.write("k", {"a": 2}, timestamp=7)
        assert [v.timestamp for v in store.versions("k")] == [2, 7]

    def test_latest_timestamp(self, store):
        assert store.latest_timestamp("k") is None
        store.write("k", {"a": 1}, timestamp=4)
        assert store.latest_timestamp("k") == 4


class TestCheckAndWrite:
    def test_success_when_attribute_matches(self, store):
        store.write("k", {"flag": "old", "x": 1}, timestamp=1)
        ok = store.check_and_write("k", "flag", "old", {"flag": "new"})
        assert ok
        assert store.read("k").get("flag") == "new"

    def test_failure_when_attribute_differs(self, store):
        store.write("k", {"flag": "old"}, timestamp=1)
        ok = store.check_and_write("k", "flag", "other", {"flag": "new"})
        assert not ok
        assert store.read("k").get("flag") == "old"

    def test_missing_row_compares_as_none(self, store):
        assert store.check_and_write("k", "flag", None, {"flag": "created"})
        assert store.read("k").get("flag") == "created"

    def test_missing_attribute_compares_as_none(self, store):
        store.write("k", {"other": 1}, timestamp=1)
        assert store.check_and_write("k", "flag", None, {"flag": "set"})

    def test_checks_latest_version_only(self, store):
        store.write("k", {"flag": "v1"}, timestamp=1)
        store.write("k", {"flag": "v2"}, timestamp=2)
        assert not store.check_and_write("k", "flag", "v1", {"flag": "v3"})
        assert store.check_and_write("k", "flag", "v2", {"flag": "v3"})

    def test_failed_check_writes_nothing(self, store):
        store.write("k", {"flag": 1}, timestamp=1)
        store.check_and_write("k", "flag", 2, {"flag": 3, "extra": True})
        assert len(store.versions("k")) == 1


class TestIntrospection:
    def test_contains(self, store):
        assert "k" not in store
        store.write("k", {"a": 1})
        assert "k" in store

    def test_keys_sorted(self, store):
        store.write("b", {"x": 1})
        store.write("a", {"x": 1})
        assert store.keys() == ["a", "b"]

    def test_op_counts(self, store):
        store.write("k", {"a": 1})
        store.read("k")
        store.check_and_write("k", "a", 1, {"a": 2})
        assert store.op_counts["write"] == 2  # direct + via check_and_write
        assert store.op_counts["read"] == 1
        assert store.op_counts["check_and_write"] == 1
