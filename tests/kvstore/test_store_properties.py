"""Property-based tests for the multi-version store (hypothesis).

The store is the foundation the Paxos acceptor's atomicity rests on, so its
laws get the heaviest property coverage:

* version timestamps are strictly increasing per row;
* a read at timestamp *t* sees exactly the merge of all writes ≤ *t*;
* check_and_write is equivalent to (read-test, write) with no interleaving.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RowVersionError
from repro.kvstore.store import MultiVersionStore

keys = st.sampled_from(["k1", "k2", "k3"])
attributes = st.sampled_from(["a", "b", "c"])
values = st.integers(min_value=0, max_value=9)
timestamps = st.integers(min_value=1, max_value=40)

write_ops = st.tuples(st.just("write"), keys, attributes, values, timestamps)
caw_ops = st.tuples(st.just("caw"), keys, attributes, values, values, timestamps)
operations = st.lists(st.one_of(write_ops, caw_ops), max_size=40)


class ModelStore:
    """A brutally simple reference model: list of accepted writes per key."""

    def __init__(self) -> None:
        self.writes: dict[str, list[tuple[int, str, int]]] = {}

    def latest_ts(self, key: str) -> int | None:
        entries = self.writes.get(key)
        return max(ts for ts, _a, _v in entries) if entries else None

    def image_at(self, key: str, timestamp: int | None) -> dict[str, int]:
        image: dict[str, int] = {}
        for ts, attribute, value in sorted(self.writes.get(key, [])):
            if timestamp is None or ts <= timestamp:
                image[attribute] = value
        return image

    def write(self, key: str, attribute: str, value: int, ts: int) -> bool:
        latest = self.latest_ts(key)
        if latest is not None and ts <= latest:
            return False
        self.writes.setdefault(key, []).append((ts, attribute, value))
        return True


@given(operations)
@settings(max_examples=200, deadline=None)
def test_store_matches_reference_model(ops):
    store = MultiVersionStore("prop")
    model = ModelStore()
    for op in ops:
        if op[0] == "write":
            _tag, key, attribute, value, ts = op
            accepted = model.write(key, attribute, value, ts)
            if accepted:
                store.write(key, {attribute: value}, timestamp=ts)
            else:
                try:
                    store.write(key, {attribute: value}, timestamp=ts)
                    raise AssertionError("store accepted a stale write")
                except RowVersionError:
                    pass
        else:
            _tag, key, attribute, test_value, value, ts = op
            current = model.image_at(key, None).get(attribute)
            expected_ok = current == test_value and (
                model.latest_ts(key) is None or ts > model.latest_ts(key)
            )
            if current == test_value:
                # Mirror the store: a passing check attempts the write, which
                # may still raise on a stale timestamp.
                try:
                    ok = store.check_and_write(key, attribute, test_value,
                                               {attribute: value}, timestamp=ts)
                except RowVersionError:
                    ok = False
                    assert not expected_ok
                else:
                    assert ok
                    model.write(key, attribute, value, ts)
            else:
                ok = store.check_and_write(key, attribute, test_value,
                                           {attribute: value}, timestamp=ts)
                assert not ok
    # Final state equivalence at every probe timestamp.
    for key in ["k1", "k2", "k3"]:
        for probe in [None, 1, 10, 20, 40]:
            version = store.read(key, timestamp=probe)
            expected = model.image_at(key, probe)
            if not expected:
                assert version is None or probe is None
            else:
                assert version is not None
                assert dict(version.attributes) == expected


@given(st.lists(st.tuples(attributes, values), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_auto_timestamps_strictly_increase(writes):
    store = MultiVersionStore("auto")
    previous = 0
    for attribute, value in writes:
        ts = store.write("k", {attribute: value})
        assert ts > previous
        previous = ts


@given(st.lists(st.tuples(attributes, values, timestamps), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_reads_are_repeatable(writes):
    """Reading the same (key, timestamp) twice gives identical images."""
    store = MultiVersionStore("repeat")
    applied = []
    for attribute, value, ts in writes:
        try:
            store.write("k", {attribute: value}, timestamp=ts)
            applied.append(ts)
        except RowVersionError:
            pass
    for probe in applied:
        first = store.read("k", timestamp=probe)
        second = store.read("k", timestamp=probe)
        assert first == second
