"""Tests for immutable row versions."""

import pytest

from repro.kvstore.row import RowVersion


class TestRowVersion:
    def test_attributes_frozen(self):
        version = RowVersion(timestamp=1, attributes={"a": 1})
        with pytest.raises(TypeError):
            version.attributes["a"] = 2

    def test_source_dict_mutations_do_not_leak(self):
        source = {"a": 1}
        version = RowVersion(timestamp=1, attributes=source)
        source["a"] = 99
        assert version.get("a") == 1

    def test_get_with_default(self):
        version = RowVersion(timestamp=1, attributes={"a": 1})
        assert version.get("a") == 1
        assert version.get("b") is None
        assert version.get("b", "fallback") == "fallback"

    def test_merged_with_overrides_and_carries(self):
        version = RowVersion(timestamp=1, attributes={"a": 1, "b": 2})
        merged = version.merged_with({"b": 20, "c": 30}, timestamp=2)
        assert merged.timestamp == 2
        assert dict(merged.attributes) == {"a": 1, "b": 20, "c": 30}
        # original untouched
        assert dict(version.attributes) == {"a": 1, "b": 2}

    def test_equality_by_content(self):
        assert RowVersion(1, {"a": 1}) == RowVersion(1, {"a": 1})
        assert RowVersion(1, {"a": 1}) != RowVersion(2, {"a": 1})
