"""Property-based Paxos safety under adversarial schedules.

The core Paxos invariant — at most one value is ever decided per instance —
must hold under message loss, slow stores (wide interleaving windows),
duplicate proposers, and any seed.  We hammer one log position with many
concurrent proposers under randomized conditions and assert:

* all replicas that mark a value chosen mark the *same* value;
* any value accepted by a majority at one ballot is unique per instance;
* every proposer that believes it decided observed that same value.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paxos.ballot import Ballot
from repro.paxos.proposer import SynodProposer
from repro.sim.env import Environment
from repro.wal.entry import LogEntry
from tests.helpers import txn
from tests.paxos.conftest import MiniDeployment


def proposer_process(env, deployment, client, value, max_attempts=12):
    """A well-behaved single-decree proposer: prepare → adopt → accept."""

    def run():
        from repro.paxos.ballot import NULL_BALLOT

        proposer = SynodProposer(client, "g", 1, deployment.service_names,
                                 deployment.config)
        rng = env.rng.stream(f"prop.{client.name}")
        ballot = Ballot(1, client.name)
        for _ in range(max_attempts):
            prepare = yield from proposer.prepare(ballot)
            if prepare.chosen is not None:
                return prepare.chosen
            if prepare.successes < proposer.majority:
                yield env.timeout(rng.uniform(0, 20))
                ballot = ballot.next_round(client.name, prepare.max_promised)
                continue
            best_ballot, best_value = NULL_BALLOT, None
            for _src, reply in prepare.replies:
                if not reply.success:
                    continue
                if reply.last_value is not None and reply.last_ballot > best_ballot:
                    best_ballot, best_value = reply.last_ballot, reply.last_value
            proposal = best_value if best_value is not None else value
            accept = yield from proposer.accept(ballot, proposal)
            if accept.successes >= proposer.majority:
                proposer.apply(ballot, proposal)
                return proposal
            yield env.timeout(rng.uniform(0, 20))
            ballot = ballot.next_round(client.name, accept.max_promised)
        return None

    return env.process(run())


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_acceptors=st.sampled_from([2, 3, 5]),
    n_proposers=st.integers(min_value=2, max_value=5),
    loss=st.sampled_from([0.0, 0.05, 0.2]),
    duplicate=st.sampled_from([0.0, 0.3]),
    store_hi=st.sampled_from([0.0, 5.0]),
)
@settings(max_examples=60, deadline=None)
def test_at_most_one_value_decided(seed, n_acceptors, n_proposers, loss,
                                   duplicate, store_hi):
    env = Environment(seed=seed)
    deployment = MiniDeployment(
        env, n=n_acceptors, loss=loss, store_latency=(0.0, store_hi)
    )
    deployment.network.duplicate_probability = duplicate
    processes = []
    for index in range(n_proposers):
        client = deployment.client_node()
        value = LogEntry.single(txn(f"t{index}", writes={"a": f"v{index}"}))
        processes.append(proposer_process(env, deployment, client, value))
    env.run()

    chosen = deployment.chosen_values("g", 1)
    assert len({entry.tids for entry in chosen}) <= 1, (
        f"replicas diverged: {[str(c) for c in chosen]}"
    )
    majority_value = deployment.accepted_majority_value("g", 1)
    decided_views = {
        process.value.tids for process in processes if process.value is not None
    }
    assert len(decided_views) <= 1, f"proposers decided differently: {decided_views}"
    if chosen and majority_value is not None:
        assert chosen[0].tids == majority_value.tids
    if decided_views and chosen:
        assert decided_views == {chosen[0].tids}


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_no_loss_single_proposer_always_decides(seed):
    env = Environment(seed=seed)
    deployment = MiniDeployment(env, n=3, loss=0.0)
    client = deployment.client_node()
    value = LogEntry.single(txn("t0", writes={"a": "v0"}))
    process = proposer_process(env, deployment, client, value)
    env.run()
    assert process.value is not None
    assert process.value.tids == ("t0",)
    assert all(entry.tids == ("t0",) for entry in deployment.chosen_values("g", 1))
