"""Tests for proposal numbers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.paxos.ballot import FAST_PATH_ROUND, NULL_BALLOT, Ballot, fast_path_ballot


class TestOrdering:
    def test_round_dominates(self):
        assert Ballot(1, "z") < Ballot(2, "a")

    def test_proposer_breaks_ties(self):
        assert Ballot(1, "a") < Ballot(1, "b")

    def test_null_below_everything(self):
        assert NULL_BALLOT < Ballot(0, "")
        assert NULL_BALLOT < fast_path_ballot("anyone")

    def test_fast_path_is_round_zero(self):
        ballot = fast_path_ballot("client")
        assert ballot.round == FAST_PATH_ROUND
        assert ballot < Ballot(1, "client")

    def test_distinct_proposers_never_equal(self):
        assert Ballot(3, "a") != Ballot(3, "b")


class TestNextRound:
    def test_exceeds_own_round(self):
        ballot = Ballot(3, "me")
        assert ballot.next_round("me") == Ballot(4, "me")

    def test_exceeds_observed_floor(self):
        ballot = Ballot(3, "me")
        bumped = ballot.next_round("me", at_least=Ballot(10, "them"))
        assert bumped == Ballot(11, "me")

    def test_floor_below_self_ignored(self):
        ballot = Ballot(5, "me")
        assert ballot.next_round("me", at_least=Ballot(2, "x")) == Ballot(6, "me")


ballots = st.builds(
    Ballot,
    round=st.integers(min_value=-1, max_value=100),
    proposer=st.sampled_from(["a", "b", "c"]),
)


@given(ballots, ballots)
def test_total_order(x, y):
    assert (x < y) + (y < x) + (x == y) == 1


@given(ballots, st.sampled_from(["a", "b"]), ballots)
def test_next_round_strictly_greater(ballot, proposer, floor):
    bumped = ballot.next_round(proposer, at_least=floor)
    assert bumped > ballot
    assert bumped.round > floor.round
