"""Tests for catch-up (§4.1 Fault Tolerance and Recovery)."""

from repro.paxos.ballot import Ballot
from repro.paxos.learner import Learner
from repro.paxos.proposer import SynodProposer
from repro.wal.entry import LogEntry
from tests.helpers import txn
from tests.paxos.conftest import MiniDeployment


def value_of(tid):
    return LogEntry.single(txn(tid, writes={"a": tid}))


def drive(env, generator):
    process = env.process(generator)
    env.run()
    if not process.ok:
        raise process.value
    return process.value


def decide(env, deployment, position, tid, apply_to_all=True):
    client = deployment.client_node()
    proposer = SynodProposer(client, "g", position, deployment.service_names,
                             deployment.config)
    ballot = Ballot(1, client.name)
    value = value_of(tid)
    drive(env, proposer.prepare(ballot))
    drive(env, proposer.accept(ballot, value))
    if apply_to_all:
        proposer.apply(ballot, value)
        env.run()
    return value


class TestPassiveLearn:
    def test_learns_from_chosen_replica(self, env, deployment):
        value = decide(env, deployment, 1, "t1")
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        assert drive(env, learner.learn(1)) == value

    def test_learns_from_accepted_majority_without_apply(self, env, deployment):
        value = decide(env, deployment, 1, "t1", apply_to_all=False)
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        assert drive(env, learner.learn(1)) == value

    def test_undecided_position_returns_none(self, env, deployment):
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        assert drive(env, learner.learn(1)) is None


class TestActiveRecovery:
    def test_completes_a_minority_accepted_instance(self, env):
        """A proposer crashed after one acceptor voted: recovery must
        complete the instance with that value (never invent a new one)."""
        deployment = MiniDeployment(env, n=3)
        client = deployment.client_node()
        proposer = SynodProposer(client, "g", 1,
                                 deployment.service_names[:1],  # only D0!
                                 deployment.config)
        ballot = Ballot(1, client.name)
        value = value_of("t1")
        drive(env, proposer.prepare(ballot))
        drive(env, proposer.accept(ballot, value))
        # No apply; only acceptor 0 has the vote.
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        recovered = drive(env, learner.learn_or_decide(1))
        assert recovered == value
        assert deployment.accepted_majority_value("g", 1) == value

    def test_untouched_position_is_reported_undecided(self, env, deployment):
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        assert drive(env, learner.learn_or_decide(1)) is None

    def test_recovery_never_contradicts_a_decision(self, env, deployment):
        value = decide(env, deployment, 1, "t1", apply_to_all=False)
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        recovered = drive(env, learner.learn_or_decide(1))
        assert recovered == value

    def test_recovery_with_one_datacenter_down(self, env):
        deployment = MiniDeployment(env, n=3)
        value = decide(env, deployment, 1, "t1", apply_to_all=False)
        deployment.network.take_down("D2")
        learner = Learner(deployment.client_node(), "g",
                          deployment.service_names, deployment.config)
        recovered = drive(env, learner.learn_or_decide(1))
        assert recovered == value
