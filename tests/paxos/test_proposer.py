"""Tests for the synod phase driver."""

from repro.paxos.ballot import Ballot
from repro.paxos.proposer import SynodProposer
from repro.wal.entry import LogEntry
from tests.helpers import txn
from tests.paxos.conftest import MiniDeployment


def value_of(tid):
    return LogEntry.single(txn(tid, writes={"a": tid}))


def drive(env, generator):
    process = env.process(generator)
    env.run()
    if not process.ok:
        raise process.value
    return process.value


class TestPreparePhase:
    def test_gathers_all_promises(self, env, deployment):
        client = deployment.client_node()
        proposer = SynodProposer(client, "g", 1, deployment.service_names,
                                 deployment.config)
        outcome = drive(env, proposer.prepare(Ballot(1, client.name)))
        assert outcome.successes == 3
        assert outcome.chosen is None
        assert all(reply.last_value is None for _s, reply in outcome.replies)

    def test_refusals_reported_with_promised(self, env, deployment):
        first = deployment.client_node()
        second = deployment.client_node()
        high = SynodProposer(first, "g", 1, deployment.service_names,
                             deployment.config)
        drive(env, high.prepare(Ballot(10, first.name)))
        low = SynodProposer(second, "g", 1, deployment.service_names,
                            deployment.config)
        outcome = drive(env, low.prepare(Ballot(1, second.name)))
        assert outcome.successes == 0
        assert outcome.max_promised == Ballot(10, first.name)

    def test_unreachable_majority_times_out_with_partial(self, env):
        deployment = MiniDeployment(env, n=3)
        deployment.network.take_down("D1")
        deployment.network.take_down("D2")
        client = deployment.client_node()
        proposer = SynodProposer(client, "g", 1, deployment.service_names,
                                 deployment.config)
        outcome = drive(env, proposer.prepare(Ballot(1, client.name)))
        assert outcome.successes == 1  # only the local acceptor answered


class TestAcceptApply:
    def test_accept_records_votes(self, env, deployment):
        client = deployment.client_node()
        proposer = SynodProposer(client, "g", 1, deployment.service_names,
                                 deployment.config)
        ballot = Ballot(1, client.name)
        drive(env, proposer.prepare(ballot))
        value = value_of("t1")
        outcome = drive(env, proposer.accept(ballot, value))
        # The accept gather completes at quorum (grace 0): at least a
        # majority of SUCCESS votes, not necessarily all of them.
        assert outcome.successes >= proposer.majority

    def test_full_instance_decides_everywhere(self, env, deployment):
        client = deployment.client_node()
        proposer = SynodProposer(client, "g", 1, deployment.service_names,
                                 deployment.config)
        ballot = Ballot(1, client.name)
        value = value_of("t1")
        drive(env, proposer.prepare(ballot))
        drive(env, proposer.accept(ballot, value))
        proposer.apply(ballot, value)
        env.run()
        assert deployment.chosen_values("g", 1) == [value, value, value]

    def test_accept_refused_after_higher_promise(self, env, deployment):
        first = deployment.client_node()
        second = deployment.client_node()
        low = SynodProposer(first, "g", 1, deployment.service_names,
                            deployment.config)
        low_ballot = Ballot(1, first.name)
        drive(env, low.prepare(low_ballot))
        high = SynodProposer(second, "g", 1, deployment.service_names,
                             deployment.config)
        drive(env, high.prepare(Ballot(5, second.name)))
        outcome = drive(env, low.accept(low_ballot, value_of("t1")))
        assert outcome.successes == 0
        assert outcome.max_promised == Ballot(5, second.name)

    def test_chosen_shortcut_on_prepare(self, env, deployment):
        first = deployment.client_node()
        proposer = SynodProposer(first, "g", 1, deployment.service_names,
                                 deployment.config)
        ballot = Ballot(1, first.name)
        value = value_of("t1")
        drive(env, proposer.prepare(ballot))
        drive(env, proposer.accept(ballot, value))
        proposer.apply(ballot, value)
        env.run()
        second = deployment.client_node()
        late = SynodProposer(second, "g", 1, deployment.service_names,
                             deployment.config)
        outcome = drive(env, late.prepare(Ballot(9, second.name)))
        assert outcome.chosen == value
