"""A miniature Paxos deployment for proposer/learner tests.

N acceptor nodes (instant stores, constant network latency) plus client
nodes, without the transaction tier on top — tests drive raw synod phases.
"""

from __future__ import annotations

import pytest

from repro.config import ProtocolConfig
from repro.kvstore.service import StoreAccessor, StoreLatencyModel
from repro.kvstore.store import MultiVersionStore
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.node import Node
from repro.net.topology import Datacenter, Topology, VIRGINIA
from repro.paxos import messages as m
from repro.paxos.acceptor import Acceptor


class MiniDeployment:
    def __init__(self, env, n=3, latency=1.0, loss=0.0,
                 store_latency=(0.0, 0.0)) -> None:
        self.env = env
        topology = Topology([Datacenter(f"D{i}", VIRGINIA) for i in range(n)])
        self.network = Network(env, topology, ConstantLatency(latency),
                               loss_probability=loss)
        self.stores: list[MultiVersionStore] = []
        self.acceptors: list[Acceptor] = []
        self.service_names: list[str] = []
        for i in range(n):
            store = MultiVersionStore(f"store{i}")
            accessor = StoreAccessor(env, store,
                                     latency=StoreLatencyModel(*store_latency))
            acceptor = Acceptor(accessor)
            node = Node(env, self.network, f"acc{i}", f"D{i}")
            node.on(m.PREPARE, lambda msg, a=acceptor: a.on_prepare(msg.payload))
            node.on(m.ACCEPT, lambda msg, a=acceptor: a.on_accept(msg.payload))
            node.on(m.APPLY, lambda msg, a=acceptor: a.on_apply(msg.payload))
            node.on(m.LEARN, lambda msg, a=acceptor: a.on_learn(msg.payload))
            self.stores.append(store)
            self.acceptors.append(acceptor)
            self.service_names.append(node.name)
        self._clients = 0
        self.config = ProtocolConfig(timeout_ms=200.0, quorum_grace_ms=2.0,
                                     retry_backoff_ms=10.0)

    def client_node(self) -> Node:
        self._clients += 1
        return Node(self.env, self.network, f"client{self._clients}", "D0")

    def chosen_values(self, group: str, position: int) -> list:
        """The chosen value at each store that has one."""
        from repro.paxos.acceptor import AcceptorState
        from repro.wal.log import paxos_row_key

        values = []
        for store in self.stores:
            state = AcceptorState.from_version(
                store.read(paxos_row_key(group, position))
            )
            if state.chosen:
                values.append(state.value)
        return values

    def accepted_majority_value(self, group: str, position: int):
        """A value accepted at one ballot by a majority, if any (= decided)."""
        from collections import Counter

        from repro.paxos.acceptor import AcceptorState
        from repro.wal.log import paxos_row_key

        counter = Counter()
        values = {}
        for store in self.stores:
            state = AcceptorState.from_version(
                store.read(paxos_row_key(group, position))
            )
            if state.value is not None:
                key = (state.ballot, state.value.tids)
                counter[key] += 1
                values[key] = state.value
        majority = len(self.stores) // 2 + 1
        for key, count in counter.items():
            if count >= majority:
                return values[key]
        return None


@pytest.fixture
def deployment(env):
    return MiniDeployment(env)
