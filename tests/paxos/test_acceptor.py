"""Tests for the acceptor role (Algorithm 1)."""

import pytest

from repro.kvstore.service import StoreAccessor, StoreLatencyModel
from repro.kvstore.store import MultiVersionStore
from repro.paxos.acceptor import Acceptor
from repro.paxos.ballot import NULL_BALLOT, Ballot, fast_path_ballot
from repro.paxos.messages import (
    AcceptPayload,
    ApplyPayload,
    LearnPayload,
    PreparePayload,
)
from repro.wal.entry import LogEntry
from tests.helpers import txn


@pytest.fixture
def setup(env):
    store = MultiVersionStore("acceptor-test")
    accessor = StoreAccessor(env, store, latency=StoreLatencyModel.instant())
    return Acceptor(accessor), store


def run(env, generator):
    process = env.process(generator)
    env.run()
    if not process.ok:
        raise process.value
    return process.value


def value_of(*tids):
    return LogEntry(transactions=tuple(txn(t, writes={"a": t}) for t in tids))


class TestPrepare:
    def test_first_prepare_promised_with_null_vote(self, env, setup):
        acceptor, _ = setup
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(1, "c"))))
        assert reply.success
        assert reply.promised == Ballot(1, "c")
        assert reply.last_ballot == NULL_BALLOT
        assert reply.last_value is None

    def test_lower_prepare_refused_with_promised_ballot(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(5, "a"))))
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(2, "b"))))
        assert not reply.success
        assert reply.promised == Ballot(5, "a")

    def test_equal_prepare_refused(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(3, "a"))))
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(3, "a"))))
        assert not reply.success

    def test_prepare_reports_last_vote(self, env, setup):
        acceptor, _ = setup
        v = value_of("t1")
        run(env, acceptor.on_accept(AcceptPayload("g", 1, Ballot(1, "a"), v)))
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(2, "b"))))
        assert reply.success
        assert reply.last_ballot == Ballot(1, "a")
        assert reply.last_value == v

    def test_prepare_on_decided_position_returns_chosen(self, env, setup):
        acceptor, _ = setup
        v = value_of("t1")
        run(env, acceptor.on_apply(ApplyPayload("g", 1, Ballot(1, "a"), v)))
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(9, "b"))))
        assert not reply.success
        assert reply.chosen == v

    def test_positions_are_independent(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(5, "a"))))
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 2, Ballot(1, "b"))))
        assert reply.success


class TestAccept:
    def test_accept_at_promised_ballot(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(1, "a"))))
        reply = run(env, acceptor.on_accept(
            AcceptPayload("g", 1, Ballot(1, "a"), value_of("t1"))
        ))
        assert reply.success

    def test_accept_below_promise_refused(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(5, "a"))))
        reply = run(env, acceptor.on_accept(
            AcceptPayload("g", 1, Ballot(1, "b"), value_of("t1"))
        ))
        assert not reply.success
        assert reply.promised == Ballot(5, "a")

    def test_fast_path_accept_without_prepare(self, env, setup):
        """The §4.1 leader optimization: a round-0 ACCEPT lands on a fresh
        acceptor that never saw a prepare."""
        acceptor, _ = setup
        reply = run(env, acceptor.on_accept(
            AcceptPayload("g", 1, fast_path_ballot("leaderclient"), value_of("t1"))
        ))
        assert reply.success

    def test_accept_above_promise_allowed(self, env, setup):
        """Standard Paxos acceptance (documented deviation 1)."""
        acceptor, _ = setup
        run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(1, "a"))))
        reply = run(env, acceptor.on_accept(
            AcceptPayload("g", 1, Ballot(3, "b"), value_of("t2"))
        ))
        assert reply.success

    def test_revote_at_higher_ballot_replaces_vote(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_accept(AcceptPayload("g", 1, Ballot(1, "a"), value_of("t1"))))
        run(env, acceptor.on_accept(AcceptPayload("g", 1, Ballot(2, "b"), value_of("t2"))))
        reply = run(env, acceptor.on_prepare(PreparePayload("g", 1, Ballot(9, "c"))))
        assert reply.last_ballot == Ballot(2, "b")
        assert reply.last_value == value_of("t2")

    def test_accept_after_decision_refused(self, env, setup):
        acceptor, _ = setup
        run(env, acceptor.on_apply(ApplyPayload("g", 1, Ballot(1, "a"), value_of("t1"))))
        reply = run(env, acceptor.on_accept(
            AcceptPayload("g", 1, Ballot(9, "b"), value_of("t2"))
        ))
        assert not reply.success


class TestApply:
    def test_apply_marks_chosen(self, env, setup):
        acceptor, store = setup
        v = value_of("t1")
        run(env, acceptor.on_apply(ApplyPayload("g", 1, Ballot(1, "a"), v)))
        learn = run(env, acceptor.on_learn(LearnPayload("g", 1)))
        assert learn.chosen == v

    def test_apply_idempotent(self, env, setup):
        acceptor, _ = setup
        v = value_of("t1")
        run(env, acceptor.on_apply(ApplyPayload("g", 1, Ballot(1, "a"), v)))
        run(env, acceptor.on_apply(ApplyPayload("g", 1, Ballot(2, "b"), v)))
        learn = run(env, acceptor.on_learn(LearnPayload("g", 1)))
        assert learn.chosen == v


class TestLearn:
    def test_learn_fresh_position(self, env, setup):
        acceptor, _ = setup
        reply = run(env, acceptor.on_learn(LearnPayload("g", 1)))
        assert reply.chosen is None
        assert reply.last_value is None

    def test_learn_reports_vote_without_decision(self, env, setup):
        acceptor, _ = setup
        v = value_of("t1")
        run(env, acceptor.on_accept(AcceptPayload("g", 1, Ballot(1, "a"), v)))
        reply = run(env, acceptor.on_learn(LearnPayload("g", 1)))
        assert reply.chosen is None
        assert reply.last_value == v


class TestConcurrentHandlerRace:
    """Regression for the stale-vote race in Algorithm 1 as written.

    With slow store operations, an ACCEPT's conditional write can land
    between a concurrent PREPARE handler's read and *its* conditional
    write.  Algorithm 1 guards only ``nextBal`` (which the ACCEPT leaves
    unchanged when accepting at exactly the promised ballot), so the
    prepare would reply with a stale null vote — and its proposer could
    then propose against a chosen value.  Our seq-guarded acceptor must
    instead retry the prepare and report the fresh vote.
    """

    def test_prepare_sees_vote_that_lands_during_handler(self, env):
        store = MultiVersionStore("race")
        accessor = StoreAccessor(env, store, latency=StoreLatencyModel(10.0, 10.0))
        acceptor = Acceptor(accessor)
        v = value_of("t1")

        # The acceptor promised ballot (1, a) long ago (instant setup).
        fast = StoreAccessor(env, store, latency=StoreLatencyModel.instant(),
                             rng_stream="setup")
        setup_acceptor = Acceptor(fast)
        setup_reply = run(env, setup_acceptor.on_prepare(
            PreparePayload("g", 1, Ballot(1, "a"))
        ))
        assert setup_reply.success

        # Now: a slow PREPARE at (2, b) and an ACCEPT at (1, a) in flight
        # concurrently.  The accept's write lands while the prepare handler
        # is between its read and its conditional write.
        prepare_process = env.process(acceptor.on_prepare(
            PreparePayload("g", 1, Ballot(2, "b"))
        ))
        accept_process = env.process(setup_acceptor.on_accept(
            AcceptPayload("g", 1, Ballot(1, "a"), v)
        ))
        env.run()
        assert accept_process.value.success
        reply = prepare_process.value
        assert reply.success
        # The critical assertion: the vote is visible, not a stale null.
        assert reply.last_value == v
        assert reply.last_ballot == Ballot(1, "a")
