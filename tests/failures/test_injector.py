"""Tests for fault injection and the availability story (§1, §4.1)."""

from repro.failures import FailureInjector
from repro.model import TransactionStatus
from tests.conftest import make_cluster, run_txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {"a": "init"}})
    return cluster


class TestOutage:
    def test_commits_survive_minority_outage(self):
        """The headline availability claim: a datacenter down, commits go on."""
        cluster = preloaded()
        injector = FailureInjector(cluster)
        injector.outage("V3", start_ms=0.0, duration_ms=60_000.0)
        client = cluster.add_client("V1", protocol="paxos-cp")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a", "v")])
        assert outcome.committed

    def test_no_commits_without_majority(self):
        cluster = preloaded(timeout_ms=200.0, max_commit_attempts=3)
        injector = FailureInjector(cluster)
        injector.outage("V2", start_ms=0.0, duration_ms=10_000_000.0)
        injector.outage("V3", start_ms=0.0, duration_ms=10_000_000.0)
        client = cluster.add_client("V1", protocol="paxos")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a", "v")])
        assert not outcome.committed

    def test_recovered_datacenter_serves_consistent_snapshot(self):
        """A recovered replica may lag, but what it serves is a consistent
        snapshot: ``begin`` pins the replica's local read position (the
        paper's step 1), and Theorem 1 serializes the read-only transaction
        at that position.  Stale is allowed; torn is not."""
        cluster = preloaded()
        injector = FailureInjector(cluster)
        injector.outage("V3", start_ms=0.0, duration_ms=5_000.0)
        client = cluster.add_client("V1", protocol="paxos-cp")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a", "v")])
        assert outcome.committed
        cluster.env.run(until=6_000.0)
        late_client = cluster.add_client("V3", protocol="paxos-cp")

        def proc():
            handle = yield from late_client.begin(GROUP)
            value = yield from late_client.read(handle, "row0", "a")
            ro_outcome = yield from late_client.commit(handle)
            return value, ro_outcome

        process = cluster.env.process(proc())
        cluster.run()
        value, ro_outcome = process.value
        # V3 had not learned position 1 when begin pinned the position, so
        # the transaction reads the initial snapshot — 1SR-consistent.
        assert value == "init"
        cluster.check_invariants(GROUP, [outcome, ro_outcome])

    def test_recovered_datacenter_catches_up_for_pinned_reads(self):
        """A read pinned to a position the replica missed forces catch-up.

        Five datacenters so a learning quorum survives: V3 misses the
        decision during its outage, then V1/V2 go dark and a client whose
        read is pinned to position 1 fails over to V3 — which must learn
        the decision from {V3, O, C} (3 of 5) and serve the new value.
        """
        cluster = preloaded(code="VVVOC")
        injector = FailureInjector(cluster)
        injector.outage("V3", start_ms=0.0, duration_ms=5_000.0)
        writer = cluster.add_client("V1", protocol="paxos-cp")
        outcome = run_txn(cluster, writer, GROUP, writes=[("row0", "a", "v")])
        assert outcome.committed
        cluster.env.run(until=6_000.0)
        reader = cluster.add_client("V1", protocol="paxos-cp")

        def proc():
            handle = yield from reader.begin(GROUP)
            cluster.services["V1"].node.down = True
            cluster.services["V2"].node.down = True
            value = yield from reader.read(handle, "row0", "a")
            return handle.read_position, value

        process = cluster.env.process(proc())
        cluster.run()
        position, value = process.value
        assert position == 1
        assert value == "v"  # V3 caught up on demand (§4.1)
        assert cluster.services["V3"].replica(GROUP).applied_through == 1

    def test_injection_log_records_events(self):
        cluster = preloaded()
        injector = FailureInjector(cluster)
        injector.outage("V2", start_ms=10.0, duration_ms=20.0)
        cluster.run()
        descriptions = [entry[1] for entry in injector.log]
        assert descriptions == ["outage start V2", "outage end V2"]


class TestLossEpisode:
    def test_loss_restored_after_window(self):
        cluster = preloaded()
        injector = FailureInjector(cluster)
        injector.loss_episode(0.4, start_ms=100.0, duration_ms=200.0)
        cluster.env.run(until=150.0)
        assert cluster.network.loss_probability == 0.4
        cluster.env.run(until=400.0)
        assert cluster.network.loss_probability == 0.0

    def test_commits_survive_heavy_loss(self):
        cluster = preloaded(seed=11)
        cluster.network.loss_probability = 0.25
        client = cluster.add_client("V1", protocol="paxos-cp")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a", "v")])
        # Retries are allowed to take a while, but the decision must be
        # clean and the invariants intact either way.
        cluster.network.loss_probability = 0.0
        cluster.check_invariants(GROUP, [outcome])


class TestPartition:
    def test_minority_side_blocked_majority_side_commits(self):
        cluster = preloaded(timeout_ms=200.0, max_commit_attempts=3)
        injector = FailureInjector(cluster)
        # Isolate V1 from both V2 and V3.
        injector.partition("V1", "V2", start_ms=0.0, duration_ms=10_000_000.0)
        injector.partition("V1", "V3", start_ms=0.0, duration_ms=10_000_000.0)
        isolated = cluster.add_client("V1", protocol="paxos")
        connected = cluster.add_client("V2", protocol="paxos")

        outcomes = []

        def proc(client):
            def run():
                handle = yield from client.begin(GROUP)
                client.write(handle, "row0", "a", f"by-{client.node.name}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        proc(isolated)
        proc(connected)
        cluster.run()
        by_origin = {o.transaction.origin_dc: o for o in outcomes}
        assert not by_origin["V1"].committed
        assert by_origin["V2"].committed


class TestClientCrash:
    def test_crash_between_accept_and_apply_still_recoverable(self):
        """§4.1: 'If a Transaction Client fails in the middle of the commit
        protocol, its transaction may be committed or aborted.'  Whatever
        happens, the log must stay consistent and later catch-up must
        converge."""
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="paxos")
        injector = FailureInjector(cluster)

        def txn_proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a", "maybe")
            return (yield from client.commit(handle))

        process = cluster.env.process(txn_proc())
        # Kill mid-protocol: after begin reply (~a few ms), during commit.
        injector.kill_process_at(process, when_ms=3.0)
        cluster.run()
        assert not process.ok or process.value is not None
        # Regardless of the outcome, the invariants hold with the crashed
        # transaction treated as unknown (no outcome reported).
        cluster.check_invariants(GROUP, [])
        # And a follow-up transaction proceeds normally.
        follow_up = cluster.add_client("V2", protocol="paxos-cp")
        outcome = run_txn(cluster, follow_up, GROUP, writes=[("row0", "a", "next")])
        assert outcome.committed
