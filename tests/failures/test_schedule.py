"""Tests for declarative fault schedules: config, materialization, install."""

import pytest

from repro.config import (
    ClusterConfig,
    FaultProfile,
    FaultScheduleConfig,
    LossWindow,
    OutageWindow,
    PartitionWindow,
    PlacementConfig,
    PumpCrash,
)
from repro.cluster import Cluster
from repro.errors import FaultScheduleError
from repro.failures.injector import FailureInjector
from repro.failures.schedule import fault_span, install_fault_schedule, materialize
from tests.conftest import make_cluster


class TestConfigValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            OutageWindow("V1", -1.0, 100.0)
        with pytest.raises(ValueError):
            OutageWindow("V1", 0.0, -1.0)

    def test_partition_needs_distinct_datacenters(self):
        with pytest.raises(ValueError):
            PartitionWindow("V1", "V1", 0.0, 100.0)

    def test_loss_probability_range(self):
        with pytest.raises(ValueError):
            LossWindow(1.5, 0.0, 100.0)

    def test_pump_restart_before_kill_rejected(self):
        with pytest.raises(ValueError):
            PumpCrash("g0", kill_ms=100.0, restart_ms=50.0)

    def test_cell_suffix(self):
        assert FaultScheduleConfig().cell_suffix() == ""
        schedule = FaultScheduleConfig(
            outages=(OutageWindow("V1", 0.0, 100.0),),
            loss_windows=(
                LossWindow(0.1, 0.0, 50.0), LossWindow(0.2, 60.0, 50.0),
            ),
        )
        assert schedule.cell_suffix() == "/faults-1o2l"

    def test_is_empty(self):
        assert FaultScheduleConfig().is_empty()
        assert not FaultScheduleConfig(
            profile=FaultProfile(1000.0, 100.0, 5000.0)
        ).is_empty()


class TestMaterialize:
    def profiled(self, seed: int) -> FaultScheduleConfig:
        cluster = make_cluster(seed=seed)
        schedule = FaultScheduleConfig(
            profile=FaultProfile(mttf_ms=400.0, mttr_ms=150.0, horizon_ms=5000.0)
        )
        return materialize(schedule, cluster)

    def test_deterministic_per_seed(self):
        assert self.profiled(7) == self.profiled(7)
        assert self.profiled(7) != self.profiled(8)

    def test_expansion_is_profile_free_and_majority_preserving(self):
        expanded = self.profiled(3)
        assert expanded.profile is None
        assert expanded.outages  # mttf << horizon: something fired
        home = make_cluster().home_dc
        for outage in expanded.outages:
            assert outage.datacenter != home  # spare_home default
            assert 0.0 <= outage.start_ms < 5000.0
            assert outage.start_ms + outage.duration_ms <= 5000.0 + 1e-9

    def test_fixed_schedule_passes_through(self):
        cluster = make_cluster()
        schedule = FaultScheduleConfig(outages=(OutageWindow("V2", 10.0, 20.0),))
        assert materialize(schedule, cluster) is schedule


class TestInstallValidation:
    def test_unknown_datacenter_rejected(self):
        cluster = make_cluster()
        schedule = FaultScheduleConfig(outages=(OutageWindow("X9", 0.0, 10.0),))
        with pytest.raises(FaultScheduleError, match="unknown datacenter"):
            install_fault_schedule(cluster, schedule)

    def test_unknown_partition_datacenter_rejected(self):
        cluster = make_cluster()
        schedule = FaultScheduleConfig(
            partitions=(PartitionWindow("V1", "X9", 0.0, 10.0),)
        )
        with pytest.raises(FaultScheduleError, match="unknown datacenter"):
            install_fault_schedule(cluster, schedule)

    def test_pump_crash_without_pumps_rejected(self):
        cluster = make_cluster()
        schedule = FaultScheduleConfig(
            pump_crashes=(PumpCrash("g0", kill_ms=50.0),)
        )
        with pytest.raises(FaultScheduleError, match="running delivery pumps"):
            install_fault_schedule(cluster, schedule)

    def test_records_fault_windows(self):
        cluster = make_cluster()
        schedule = FaultScheduleConfig(
            outages=(OutageWindow("V2", 300.0, 100.0),),
            loss_windows=(LossWindow(0.2, 100.0, 50.0),),
        )
        installed = install_fault_schedule(cluster, schedule)
        assert cluster.fault_windows == [(100.0, 150.0), (300.0, 400.0)]
        assert len(installed) == 2

    def test_fault_span_excludes_pump_crashes(self):
        schedule = FaultScheduleConfig(
            outages=(OutageWindow("V2", 300.0, 100.0),),
            pump_crashes=(PumpCrash("g0", kill_ms=50.0),),
        )
        assert fault_span(schedule) == [(300.0, 400.0)]


class TestInjectorEdgeCases:
    def test_past_time_fault_fires_immediately(self):
        """A fault declared at an already-elapsed time fires now, never drops."""
        cluster = make_cluster()
        cluster.env.run(until=500.0)
        injector = FailureInjector(cluster)
        injector.outage("V2", start_ms=100.0, duration_ms=10_000.0)
        cluster.env.run(until=501.0)
        assert cluster.network.is_down("V2")

    def test_zero_duration_window_is_a_visible_noop(self):
        cluster = make_cluster()
        injector = FailureInjector(cluster)
        injector.outage("V2", start_ms=100.0, duration_ms=0.0)
        cluster.env.run(until=200.0)
        assert not cluster.network.is_down("V2")
        descriptions = [entry for _, entry in injector.log]
        assert descriptions == ["outage start V2", "outage end V2"]

    def test_overlapping_outages_refcount(self):
        """The first window's end must not revive a DC a second holds down."""
        cluster = make_cluster()
        injector = FailureInjector(cluster)
        injector.outage("V2", start_ms=100.0, duration_ms=200.0)   # ends 300
        injector.outage("V2", start_ms=200.0, duration_ms=400.0)   # ends 600
        cluster.env.run(until=450.0)
        assert cluster.network.is_down("V2")  # first window ended, second open
        cluster.env.run(until=700.0)
        assert not cluster.network.is_down("V2")

    def test_midrun_cross_lane_kill_raises_typed_error(self):
        """On a sharded kernel a mid-run cross-lane kill is a typed error."""
        cluster = Cluster(ClusterConfig(
            cluster_code="VVV", seed=0,
            placement=PlacementConfig(
                n_groups=2, assignment="range", key_universe=2,
            ),
            shards=2, engine="sharded",
        ))
        injector = FailureInjector(cluster)

        def sleeper():
            yield cluster.env.timeout(1_000.0)

        victim = cluster.env.process(sleeper(), name="victim", lane=1)

        def attacker():
            yield cluster.env.timeout(10.0)
            injector.kill_process_at(victim, 50.0)

        cluster.env.process(attacker(), name="attacker", lane=0)
        with pytest.raises(FaultScheduleError, match="cross-lane"):
            cluster.env.run(until=2_000.0)

    def test_paused_cross_lane_kill_is_allowed(self):
        """Declaring the same kill while paused (no ambient lane) is fine."""
        cluster = Cluster(ClusterConfig(
            cluster_code="VVV", seed=0,
            placement=PlacementConfig(
                n_groups=2, assignment="range", key_universe=2,
            ),
            shards=2, engine="sharded",
        ))
        injector = FailureInjector(cluster)

        def sleeper():
            yield cluster.env.timeout(1_000.0)

        victim = cluster.env.process(sleeper(), name="victim", lane=1)
        injector.kill_process_at(victim, 50.0)
        cluster.env.run(until=2_000.0)
        assert not victim.is_alive
