"""Crash-restart recovery: the durable/volatile split, held to account.

A service-replica crash is *amnesia* — everything not explicitly durable
(`_paxos/` acceptor rows, `_meta/` intents, the preloaded base image) is
gone, in-flight handler processes die mid-yield, and the restarted node
must rebuild its volatile projections purely from WAL replay plus Paxos
catch-up (Spinnaker-style recovery, arXiv:1103.2408).  These tests pin
each layer of that contract: the store-level erase, the crash fence on
in-flight operations, the declarative :class:`CrashWindow` config, the
amnesia detector (both directions — clean runs pass, forged regressions
are caught), and the headline property: recovery is *idempotent* — a
replica crashed twice in one run ends byte-identical to one that never
crashed at all.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import (
    ClusterConfig,
    CrashWindow,
    FaultProfile,
    FaultScheduleConfig,
    WorkloadConfig,
)
from repro.errors import FaultScheduleError
from repro.failures import FailureInjector
from repro.failures.schedule import fault_span, install_fault_schedule, materialize
from repro.kvstore.service import StoreAccessor
from repro.kvstore.store import MultiVersionStore
from repro.sim.env import Environment
from repro.wal.invariants import InvariantViolation
from repro.workload.driver import WorkloadDriver
from tests.conftest import make_cluster, run_txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {f"a{i}": "init" for i in range(4)}})
    return cluster


class TestCrashWindowConfig:
    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start_ms"):
            CrashWindow("V2", -1.0, 100.0)

    def test_rejects_nonpositive_restart_delay(self):
        with pytest.raises(ValueError, match="restart_after_ms"):
            CrashWindow("V2", 0.0, 0.0)

    def test_cell_suffix_counts_crashes(self):
        config = FaultScheduleConfig(crashes=(CrashWindow("V2", 10.0, 50.0),))
        assert config.cell_suffix() == "/faults-1c"

    def test_crash_windows_count_toward_fault_span(self):
        # A dead replica costs quorum latency, so the availability report
        # aligns its timeline against the crash window too.
        config = FaultScheduleConfig(crashes=(CrashWindow("V2", 10.0, 50.0),))
        assert fault_span(config) == [(10.0, 60.0)]

    def test_unknown_datacenter_rejected_at_install(self):
        cluster = preloaded()
        config = FaultScheduleConfig(crashes=(CrashWindow("X9", 10.0, 50.0),))
        with pytest.raises(FaultScheduleError, match="unknown datacenter"):
            install_fault_schedule(cluster, config)

    def test_profile_kind_crash_materializes_crash_windows(self):
        cluster = preloaded()
        profile = FaultProfile(
            mttf_ms=200.0, mttr_ms=100.0, horizon_ms=3_000.0, kind="crash"
        )
        schedule = materialize(FaultScheduleConfig(profile=profile), cluster)
        assert schedule.profile is None
        assert schedule.crashes
        # spare_home: the home datacenter is never the victim, so the
        # derived schedule is majority-preserving on a 3-DC deployment.
        assert all(c.datacenter != cluster.home_dc for c in schedule.crashes)
        assert all(c.restart_after_ms > 0 for c in schedule.crashes)


class TestDurableVolatileSplit:
    def test_erase_volatile_keeps_durable_prefixes_and_preload(self):
        store = MultiVersionStore(name="s")
        store.write("_paxos/g/00000001", {"promise": 7}, timestamp=5.0)
        store.write("_meta/lease_epoch/n", {"incarnation": 3}, timestamp=6.0)
        store.write("data/row0", {"a": "base"}, timestamp=0.0)  # preload
        store.write("data/row0", {"a": "dirty"}, timestamp=7.0)
        store.write("scratch", {"x": 1}, timestamp=8.0)
        erased = store.erase_volatile()
        # The dirty data version and the scratch row die; the durable
        # prefixes and the ts<=0 base image survive.
        assert erased == 2
        assert store.read_attribute("_paxos/g/00000001", "promise") == 7
        assert store.read_attribute("_meta/lease_epoch/n", "incarnation") == 3
        assert [v.timestamp for v in store.versions("data/row0")] == [0.0]
        assert store.read("scratch") is None

    def test_fenced_in_flight_operation_never_lands(self):
        # A write issued before the crash whose latency timeout fires after
        # it must vanish — like a write that never reached the disk.
        env = Environment(seed=1)
        store = MultiVersionStore(name="s")
        accessor = StoreAccessor(env, store)
        accessor.write("row", {"a": 1}, timestamp=1.0)
        accessor.fence()
        env.run()
        assert store.read("row") is None

    def test_unfenced_operation_lands(self):
        env = Environment(seed=1)
        store = MultiVersionStore(name="s")
        accessor = StoreAccessor(env, store)
        accessor.write("row", {"a": 1}, timestamp=1.0)
        env.run()
        assert store.read_attribute("row", "a") == 1


class TestCrashRestart:
    def test_commits_continue_while_minority_replica_down(self):
        cluster = preloaded()
        injector = FailureInjector(cluster)
        injector.crash("V3", start_ms=0.0, restart_after_ms=5_000.0)
        client = cluster.add_client("V1", protocol="paxos-cp")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a0", "v")])
        assert outcome.committed
        assert cluster.check_crash_amnesia() == []

    def test_restarted_replica_rebuilds_projection_from_wal(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="paxos-cp")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a0", "v1")])
        assert outcome.committed
        # Force the apply projection to exist (apply is lazy, read-driven)
        # so the crash has volatile versions to lose.
        reader = cluster.add_client("V1", protocol="paxos-cp")
        run_txn(cluster, reader, GROUP, reads=[("row0", "a0")])
        injector = FailureInjector(cluster)
        injector.crash("V1", start_ms=cluster.env.now + 10.0,
                       restart_after_ms=100.0)
        cluster.run()
        record = cluster.crash_records[0]
        assert record.erased_versions >= 1  # the apply projection died
        assert record.restart_ms == pytest.approx(record.crash_ms + 100.0)
        assert GROUP in record.recovery_groups
        # Recovery replayed the WAL: the volatile projection is back.
        replica = cluster.services["V1"].replica(GROUP)
        assert replica.applied_through >= 1
        entry = replica.chosen_entry(1)
        assert entry is not None and entry.contains(outcome.transaction.tid)
        assert cluster.check_crash_amnesia() == []

    def test_overlapping_crash_windows_merge(self):
        # Two windows on one replica refcount like outages: the nested
        # restart must not reboot the node mid-outer-window.
        cluster = preloaded()
        injector = FailureInjector(cluster)
        injector.crash("V2", start_ms=10.0, restart_after_ms=200.0)
        injector.crash("V2", start_ms=50.0, restart_after_ms=100.0)
        cluster.env.run(until=160.0)  # past the inner restart (150ms)
        assert cluster.services["V2"].node.down
        assert len(cluster.crash_records) == 1
        cluster.run()
        record = cluster.crash_records[0]
        assert not cluster.services["V2"].node.down
        assert record.restart_ms == pytest.approx(210.0)
        assert cluster.check_crash_amnesia() == []

    def test_restart_without_crash_rejected(self):
        cluster = preloaded()
        with pytest.raises(FaultScheduleError, match="without a matching"):
            cluster.restart_service("V2")


class TestAmnesiaDetector:
    def test_durable_drift_while_down_is_caught_at_restart(self):
        # A down replica accepts no traffic, so any durable change between
        # crash and restart is detector-reportable corruption.
        cluster = preloaded()
        cluster.crash_service("V2")
        cluster.stores["V2"].write(
            "_meta/lease_epoch/evil", {"incarnation": 1}, timestamp=1.0
        )
        with pytest.raises(InvariantViolation, match="amnesia"):
            cluster.restart_service("V2")

    def test_vanished_durable_row_flagged_at_end_of_run(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="paxos")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a0", "v")])
        assert outcome.committed
        record = cluster.crash_service("V2")
        assert record.durable_image  # the acceptor voted, so rows exist
        cluster.restart_service("V2")
        cluster.run()
        # Forge the failure mode the detector exists for: a durable
        # acceptor row the crashed replica had promised in is simply gone.
        key = sorted(record.durable_image)[0]
        del cluster.stores["V2"]._rows[key]
        violations = cluster.check_crash_amnesia()
        assert any("vanished" in v for v in violations)

    def test_crash_without_restart_flagged(self):
        # Recovery must be finite: a replica that never comes back is a
        # violation, not a silently shorter run.
        cluster = preloaded()
        cluster.crash_service("V2")
        violations = cluster.check_crash_amnesia()
        assert any("never restarted" in v for v in violations)


def _data_projection(store: MultiVersionStore) -> dict[str, list[tuple]]:
    """Every data row's replayed versions: ``{key: [(ts, attrs...), ...]}``.

    Internal prefixes are excluded — ``_txnstatus/`` write times depend on
    when each replica *learned* an outcome (legitimately order-dependent),
    while data versions are stamped by log position and must replay
    identically everywhere.
    """
    projection: dict[str, list[tuple]] = {}
    for key in sorted(store.keys()):
        if key.startswith("_"):
            continue
        projection[key] = [
            (version.timestamp, tuple(sorted(version.attributes.items())))
            for version in store.versions(key)
        ]
    return projection


class TestRecoveryIdempotence:
    def test_double_crash_replica_matches_never_crashed_replica(self):
        """Crash the same replica twice in one run; its rebuilt state must
        be byte-identical to a replica that never crashed.

        This is the recovery-idempotence property: WAL replay + Paxos
        catch-up is a pure function of the durable log, so running it
        twice (with fresh amnesia in between) lands on exactly the state
        continuous operation would have produced — same chosen entries,
        same data versions at the same position timestamps.
        """
        cluster = Cluster(ClusterConfig(cluster_code="VVV", seed=7))
        workload = WorkloadConfig(
            n_transactions=12, ops_per_transaction=3, n_attributes=6,
            n_rows=2, n_threads=2, target_rate_per_thread=20.0,
            stagger_ms=5.0,
        )
        driver = WorkloadDriver(cluster, workload, "paxos-cp")
        driver.install_data()
        injector = FailureInjector(cluster)
        injector.crash("V3", start_ms=60.0, restart_after_ms=90.0)
        injector.crash("V3", start_ms=350.0, restart_after_ms=120.0)
        driver.start()
        cluster.run()

        records = cluster.crash_records
        assert len(records) == 2
        assert all(r.restart_ms is not None for r in records)

        logs = cluster.finalize_all()
        cluster.check_invariants_all(driver.result.outcomes, logs=logs)

        # Apply is lazy, so level the field by running the *same* recovery
        # replay on the never-crashed witness: if recovery is truly a pure
        # function of the durable log, replaying over live state is a
        # no-op and both replicas land on the identical full projection.
        cluster.services["V2"].spawn_recovery()
        cluster.services["V3"].spawn_recovery()
        cluster.run()

        crashed, witness = cluster.stores["V3"], cluster.stores["V2"]
        assert _data_projection(crashed) == _data_projection(witness)
        # The chosen log itself agrees position by position.
        for group in cluster.groups:
            survivor = cluster.services["V2"].replica(group)
            rebuilt = cluster.services["V3"].replica(group)
            assert rebuilt.applied_through == survivor.applied_through
            for position in range(1, survivor.applied_through + 1):
                assert rebuilt.chosen_entry(position) == \
                    survivor.chosen_entry(position)
