"""Tests for seeded random streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "net") == derive_seed(1, "net")

    def test_varies_with_name(self):
        assert derive_seed(1, "net") != derive_seed(1, "workload")

    def test_varies_with_root(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")

    def test_is_64_bit(self):
        assert 0 <= derive_seed(123, "x") < 2**64


class TestRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(0)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        registry = RngRegistry(0)
        first = [registry.stream("a").random() for _ in range(5)]
        # Drawing from "b" must not perturb "a"'s future draws.
        registry_two = RngRegistry(0)
        for _ in range(100):
            registry_two.stream("b").random()
        second = [registry_two.stream("a").random() for _ in range(5)]
        assert first == second

    def test_reproducible_across_instances(self):
        draws_one = [RngRegistry(7).stream("s").random() for _ in range(3)]
        draws_two = [RngRegistry(7).stream("s").random() for _ in range(3)]
        assert draws_one == draws_two

    def test_fork_derives_new_root(self):
        registry = RngRegistry(7)
        fork_a = registry.fork("trial-0")
        fork_b = registry.fork("trial-1")
        assert fork_a.root_seed != fork_b.root_seed
        assert fork_a.root_seed == RngRegistry(7).fork("trial-0").root_seed
