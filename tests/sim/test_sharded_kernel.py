"""Unit tests for the lane-partitioned kernels and the shard map.

The integration-level contract (field-identical metrics across kernels) is
covered by tests/harness/test_shard_digest.py; these tests pin the kernel
mechanics: canonical ordering, conservative horizons, lane isolation
enforcement, and the lane bookkeeping the profiling surfaces.
"""

from __future__ import annotations

import pytest

from repro.sim.env import Environment
from repro.sim.shard import ShardMap, service_node_name, store_name


def laned_env(lanes: int) -> Environment:
    return Environment(seed=1, lanes=lanes, engine="global")


def sharded_env(lanes: int, w: float = 1.0) -> Environment:
    return Environment(seed=1, lanes=lanes, engine="sharded", min_cross_delay=w)


class TestShardMap:
    def test_single_lane_collapse(self):
        shard_map = ShardMap(("group-0", "group-1"), 1)
        assert shard_map.single_lane
        assert shard_map.n_lanes == 1
        assert shard_map.lane_of("group-0") == 0
        assert shard_map.lane_of("anything") == 0

    def test_contiguous_blocks(self):
        groups = tuple(f"group-{i}" for i in range(8))
        shard_map = ShardMap(groups, 4)
        assert shard_map.n_lanes == 5
        lanes = [shard_map.lane_of(g) for g in groups]
        assert lanes == [1, 1, 2, 2, 3, 3, 4, 4]
        # Unknown groups (2PC decision instances, ad-hoc preloads) share lane 0.
        assert shard_map.lane_of("_txn/whatever") == 0

    def test_shards_capped_by_groups(self):
        shard_map = ShardMap(("group-0", "group-1"), 8)
        assert shard_map.shards == 2

    def test_node_names(self):
        assert service_node_name("V1", 0) == "svc:V1"
        assert service_node_name("V1", 3) == "svc:V1:3"
        assert store_name("V1", 0) == "store:V1"
        assert store_name("V1", 3) == "store:V1:3"

    def test_ordered_service_names_routes_by_lane(self):
        groups = tuple(f"group-{i}" for i in range(4))
        shard_map = ShardMap(groups, 2)
        names = shard_map.ordered_service_names(
            ["V1", "V2", "V3"], "V2", "group-3"
        )
        assert names == ["svc:V2:2", "svc:V1:2", "svc:V3:2"]

    def test_channels_for_pinned_client_are_empty(self):
        groups = tuple(f"group-{i}" for i in range(4))
        shard_map = ShardMap(groups, 4)
        lane = shard_map.lane_of("group-2")
        assert shard_map.channels_for_client(lane, ["group-2"]) == set()

    def test_channels_for_roaming_client(self):
        groups = tuple(f"group-{i}" for i in range(2))
        shard_map = ShardMap(groups, 2)
        channels = shard_map.channels_for_client(0, groups)
        assert channels == {(0, 1), (1, 0), (0, 2), (2, 0)}

    def test_cross_group_adds_shared_lane_learn_channels(self):
        groups = tuple(f"group-{i}" for i in range(2))
        shard_map = ShardMap(groups, 2)
        channels = shard_map.channels_for_client(0, groups, cross_group=True)
        # Group-lane services may LEARN decisions from the shared lane.
        assert (1, 0) in channels and (0, 1) in channels
        assert (2, 0) in channels and (0, 2) in channels


class TestLanedSimulator:
    def test_canonical_order_is_time_lane_seq(self):
        env = laned_env(3)
        order = []
        env.timeout(5.0, lane=2).add_callback(lambda e: order.append("l2"))
        env.timeout(5.0, lane=1).add_callback(lambda e: order.append("l1"))
        env.timeout(3.0, lane=2).add_callback(lambda e: order.append("early"))
        env.run()
        assert order == ["early", "l1", "l2"]

    def test_per_lane_seq_breaks_same_lane_ties(self):
        env = laned_env(2)
        order = []
        env.timeout(1.0, lane=1).add_callback(lambda e: order.append("first"))
        env.timeout(1.0, lane=1).add_callback(lambda e: order.append("second"))
        env.run()
        assert order == ["first", "second"]

    def test_single_lane_matches_plain_kernel(self):
        def chain(env, log, tag):
            for _ in range(3):
                yield env.timeout(1.0)
                log.append((tag, env.now))

        logs = []
        for build in (lambda: Environment(seed=1),
                      lambda: laned_env(1)):
            env = build()
            log: list = []
            env.process(chain(env, log, "a"))
            env.process(chain(env, log, "b"))
            env.run()
            logs.append(log)
        assert logs[0] == logs[1]


class TestShardedSimulator:
    def test_independent_lanes_drain_in_one_window(self):
        env = sharded_env(3)
        env.sim.restrict_channels(set())

        def chain(env, hops):
            for _ in range(hops):
                yield env.timeout(1.0)

        env.process(chain(env, 10), lane=1)
        env.process(chain(env, 10), lane=2)
        env.run()
        assert env.sim.stats.windows == 1
        assert env.sim.stats.events[1] == env.sim.stats.events[2]

    def test_undeclared_channel_raises(self):
        env = sharded_env(2)
        env.sim.restrict_channels(set())

        def offender(env):
            yield env.timeout(1.0)
            env.sim.schedule_in_lane(env.event().succeed(), 0.0, 1)

        env.process(offender(env), lane=0)
        with pytest.raises(RuntimeError, match="lane isolation violated"):
            env.run()

    def test_zero_floor_with_channels_rejected(self):
        env = Environment(seed=1, lanes=2, engine="sharded",
                          min_cross_delay=0.0)
        with pytest.raises(ValueError, match="latency floor"):
            env.sim.restrict_channels({(0, 1)})

    def test_run_until_advances_clock_per_lane(self):
        env = sharded_env(2)
        fired = []
        env.timeout(4.0, lane=1).add_callback(lambda e: fired.append(env.now))
        env.run(until=2.0)
        assert fired == [] and env.now == 2.0
        env.run(until=10.0)
        assert fired == [4.0]

    def test_matches_laned_kernel_with_cross_lane_pingpong(self):
        """Two lanes exchanging messages through a latency-floored channel
        observe identical per-lane histories on both kernels.

        Cross-lane execution *interleaving* within a window is free (the
        kernels only promise that nothing in one lane can observe it), so
        the comparison is per lane, not over the merged append order.
        """

        def run(engine):
            env = Environment(seed=1, lanes=2, engine=engine,
                              min_cross_delay=1.5)
            traces: dict[int, list] = {0: [], 1: []}

            def ping(env):
                for index in range(5):
                    yield env.timeout(0.7)
                    traces[0].append(("ping", round(env.now, 6)))
                    # Cross-lane notification via the kernel API, 1.5ms floor.
                    from repro.sim.events import Notification

                    class Poke(Notification):
                        __slots__ = ()

                        def _process(self_inner) -> None:
                            traces[1].append(("poke", round(env.now, 6)))

                    env.sim.schedule_in_lane(Poke(env), 1.5, 1)

            env.process(ping(env), lane=0)
            env.run()
            return traces

        assert run("global") == run("sharded")

    def test_stats_track_cross_messages(self):
        env = sharded_env(2, w=2.0)
        from repro.sim.events import Notification

        class Noop(Notification):
            __slots__ = ()

            def _process(self) -> None:
                pass

        def sender(env):
            yield env.timeout(1.0)
            env.sim.schedule_in_lane(Noop(env), 2.0, 1)

        env.process(sender(env), lane=0)
        env.run()
        assert env.sim.stats.cross_messages == 1
