"""Tests for Event, Timeout, AnyOf, AllOf."""

import pytest

from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEventLifecycle:
    def test_pending_until_triggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, env):
        event = env.event()
        event.succeed("payload")
        assert event.triggered
        assert event.ok
        assert event.value == "payload"

    def test_fail_carries_exception(self, env):
        event = env.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()
        with pytest.raises(RuntimeError):
            event.fail(ValueError())

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(RuntimeError):
            _ = event.value
        with pytest.raises(RuntimeError):
            _ = event.ok


class TestCallbacks:
    def test_callbacks_run_at_processing(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(11)
        assert seen == []  # not yet processed
        env.run()
        assert seen == [11]

    def test_late_callback_still_runs(self, env):
        event = env.event()
        event.succeed("x")
        env.run()
        assert event.processed
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == ["x"]

    def test_multiple_callbacks_in_order(self, env):
        event = env.event()
        seen = []
        for index in range(3):
            event.add_callback(lambda e, i=index: seen.append(i))
        event.succeed()
        env.run()
        assert seen == [0, 1, 2]


class TestLateCallbacks:
    """Pin the semantics of add_callback on an already-processed event.

    Late waiters are relayed through the event queue: they never run
    synchronously inside add_callback, they run at the current instant in
    the order they were added, and they observe the original event (value,
    ok flag) — regardless of how the kernel batches the relays internally.
    """

    def test_late_callback_is_queue_driven_not_immediate(self, env):
        event = env.event()
        event.succeed("v")
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == []  # deferred through the queue, never synchronous
        env.run()
        assert seen == ["v"]

    def test_late_callbacks_run_in_add_order(self, env):
        event = env.event()
        event.succeed()
        env.run()
        seen = []
        for index in range(4):
            event.add_callback(lambda e, i=index: seen.append(i))
        env.run()
        assert seen == [0, 1, 2, 3]

    def test_late_callback_on_failed_event_sees_failure(self, env):
        event = env.event()
        error = RuntimeError("boom")
        event.fail(error)
        # Nobody waited, so the failure was processed without raising.
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append((e.ok, e.value)))
        env.run()
        assert seen == [(False, error)]

    def test_late_callback_added_during_processing_runs_same_instant(self, env):
        event = env.event()
        seen = []

        def first(e):
            seen.append(("first", env.now))
            # The event is processed by now; this goes the late-relay path.
            e.add_callback(lambda e2: seen.append(("late", env.now)))

        event.add_callback(first)
        event.succeed()
        env.run()
        assert seen == [("first", 0.0), ("late", 0.0)]

    def test_late_callbacks_interleave_with_current_instant_queue(self, env):
        # A late callback runs after events that were already queued when it
        # was added — relays ride the queue like everything else.
        event = env.event()
        event.succeed()
        env.run()
        seen = []
        env.timeout(0.0).add_callback(lambda e: seen.append("queued"))
        event.add_callback(lambda e: seen.append("late"))
        env.run()
        assert seen == ["queued", "late"]

    def test_late_registrations_share_the_pending_relay(self, env):
        # Registrations made while a relay is still pending join it and run
        # adjacently at its queue position — ahead of events scheduled
        # between the two registrations (the batch holds one queue slot).
        event = env.event()
        event.succeed()
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append("late-1"))
        env.timeout(0.0).add_callback(lambda e: seen.append("between"))
        event.add_callback(lambda e: seen.append("late-2"))
        env.run()
        assert seen == ["late-1", "late-2", "between"]
        # Once the relay has fired, a fresh registration gets a fresh relay
        # behind anything queued in the meantime.
        env.timeout(0.0).add_callback(lambda e: seen.append("queued"))
        event.add_callback(lambda e: seen.append("late-3"))
        env.run()
        assert seen == ["late-1", "late-2", "between", "queued", "late-3"]

    def test_clock_does_not_advance_for_late_callbacks(self, env):
        env.timeout(7.0)
        env.run()
        event = env.event()
        event.succeed()
        env.run()
        fired_at = []
        event.add_callback(lambda e: fired_at.append(env.now))
        env.run()
        assert fired_at == [7.0]


class TestTimeout:
    def test_fires_at_delay_with_value(self, env):
        timeout = env.timeout(4.0, value="done")
        fired = []
        timeout.add_callback(lambda e: fired.append((env.now, e.value)))
        env.run()
        assert fired == [(4.0, "done")]

    def test_cannot_be_triggered_manually(self, env):
        timeout = env.timeout(1.0)
        with pytest.raises(RuntimeError):
            timeout.succeed()

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -0.5)


class TestAnyOf:
    def test_fires_on_first_child(self, env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(5.0, value="slow")
        condition = env.any_of([fast, slow])
        fired = []
        condition.add_callback(lambda e: fired.append((env.now, dict(e.value))))
        env.run()
        assert fired[0][0] == 1.0
        assert fired[0][1] == {fast: "fast"}

    def test_empty_condition_fires_immediately(self, env):
        condition = env.any_of([])
        env.run()
        assert condition.triggered
        assert condition.value == {}

    def test_child_failure_fails_condition(self, env):
        event = env.event()
        condition = env.any_of([event, env.timeout(10.0)])
        error = RuntimeError("child died")
        event.fail(error)
        results = []
        condition.add_callback(lambda e: results.append((e.ok, e.value)))
        env.run()
        assert results == [(False, error)]


class TestAllOf:
    def test_waits_for_all_children(self, env):
        first = env.timeout(1.0, value=1)
        second = env.timeout(3.0, value=2)
        condition = env.all_of([first, second])
        fired = []
        condition.add_callback(lambda e: fired.append(env.now))
        env.run()
        assert fired == [3.0]
        assert condition.value == {first: 1, second: 2}

    def test_mixed_environment_rejected(self, env):
        from repro.sim.env import Environment

        other = Environment(seed=1)
        with pytest.raises(ValueError):
            AllOf(env, [env.event(), other.event()])

    def test_already_fired_children_counted(self, env):
        done = env.event()
        done.succeed("early")
        env.run()
        condition = AnyOf(env, [done])
        env.run()
        assert condition.triggered
        assert condition.value == {done: "early"}
