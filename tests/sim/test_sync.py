"""Tests for the cooperative Lock."""

import pytest

from repro.sim.sync import Lock


class TestLock:
    def test_uncontended_acquire_is_immediate(self, env):
        lock = Lock(env)
        holder = []

        def worker():
            yield lock.acquire()
            holder.append(env.now)
            lock.release()

        env.process(worker())
        env.run()
        assert holder == [0.0]
        assert not lock.locked

    def test_mutual_exclusion(self, env):
        lock = Lock(env)
        active = []
        overlaps = []

        def worker(name, hold):
            yield lock.acquire()
            if active:
                overlaps.append((name, list(active)))
            active.append(name)
            yield env.timeout(hold)
            active.remove(name)
            lock.release()

        for index in range(3):
            env.process(worker(f"w{index}", 2.0))
        env.run()
        assert overlaps == []

    def test_fifo_handoff(self, env):
        lock = Lock(env)
        order = []

        def worker(name):
            yield lock.acquire()
            order.append(name)
            yield env.timeout(1.0)
            lock.release()

        for name in ["first", "second", "third"]:
            env.process(worker(name))
        env.run()
        assert order == ["first", "second", "third"]

    def test_release_unlocked_raises(self, env):
        with pytest.raises(RuntimeError):
            Lock(env).release()

    def test_locked_property(self, env):
        lock = Lock(env)

        def worker():
            yield lock.acquire()
            assert lock.locked
            lock.release()

        env.process(worker())
        env.run()
        assert not lock.locked
