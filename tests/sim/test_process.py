"""Tests for generator-based processes."""

import pytest

from repro.errors import InvalidYield, ProcessKilled
from repro.sim.process import Process


class TestBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)

    def test_runs_to_completion_with_return_value(self, env):
        def worker():
            yield env.timeout(2.0)
            return "result"

        process = env.process(worker())
        env.run()
        assert process.triggered
        assert process.value == "result"

    def test_timeout_value_delivered_to_yield(self, env):
        def worker():
            value = yield env.timeout(1.0, value="tick")
            return value

        process = env.process(worker())
        env.run()
        assert process.value == "tick"

    def test_sequential_timeouts_accumulate(self, env):
        times = []

        def worker():
            yield env.timeout(1.0)
            times.append(env.now)
            yield env.timeout(2.0)
            times.append(env.now)

        env.process(worker())
        env.run()
        assert times == [1.0, 3.0]

    def test_is_alive_tracks_lifecycle(self, env):
        def worker():
            yield env.timeout(1.0)

        process = env.process(worker())
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestInterProcess:
    def test_process_can_wait_on_process(self, env):
        def inner():
            yield env.timeout(3.0)
            return 99

        def outer():
            result = yield env.process(inner())
            return result + 1

        process = env.process(outer())
        env.run()
        assert process.value == 100

    def test_two_processes_interleave(self, env):
        log = []

        def worker(name, delay):
            for _ in range(2):
                yield env.timeout(delay)
                log.append((name, env.now))

        env.process(worker("a", 1.0))
        env.process(worker("b", 1.5))
        env.run()
        assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0)]

    def test_waiting_on_failed_event_throws_in(self, env):
        event = env.event()

        def worker():
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        process = env.process(worker())
        event.fail(RuntimeError("bad"))
        env.run()
        assert process.value == "caught bad"


class TestFailures:
    def test_unwatched_exception_escapes_run(self, env):
        def worker():
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(worker())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_watched_exception_delivered_to_waiter(self, env):
        def inner():
            yield env.timeout(1.0)
            raise ValueError("inner failure")

        def outer():
            try:
                yield env.process(inner())
            except ValueError as exc:
                return str(exc)

        process = env.process(outer())
        env.run()
        assert process.value == "inner failure"

    def test_invalid_yield_is_reported(self, env):
        def worker():
            yield 42  # not an Event

        process = env.process(worker())
        with pytest.raises(InvalidYield):
            env.run()
        assert not process.is_alive


class TestKill:
    def test_kill_stops_process(self, env):
        reached = []

        def worker():
            yield env.timeout(10.0)
            reached.append(True)

        process = env.process(worker())
        env.run(until=1.0)
        process.kill("test")
        env.run()
        assert reached == []
        assert not process.is_alive

    def test_kill_is_idempotent(self, env):
        def worker():
            yield env.timeout(10.0)

        process = env.process(worker())
        env.run(until=1.0)
        process.kill()
        process.kill()
        env.run()
        assert not process.is_alive

    def test_process_may_catch_kill(self, env):
        def worker():
            try:
                yield env.timeout(10.0)
            except ProcessKilled:
                return "cleaned up"

        process = env.process(worker())
        env.run(until=1.0)
        process.kill()
        env.run()
        assert process.value == "cleaned up"

    def test_stale_wakeup_after_kill_ignored(self, env):
        def worker():
            yield env.timeout(5.0)
            return "finished"

        process = env.process(worker())
        env.run(until=1.0)
        process.kill()
        env.run()  # the 5.0 timeout still fires; must not resume the corpse
        assert isinstance(process.value, ProcessKilled)
