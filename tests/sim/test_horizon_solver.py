"""Randomized equivalence: ``HorizonSolver`` vs the reference fixed point.

The label-setting solver exists purely as a faster evaluator of the system
:func:`repro.sim.core.conservative_horizons` defines — same greatest fixed
point, same float arithmetic.  Rather than trusting the shortest-path
argument, this module fuzzes randomized channel graphs with promise state
(out floors, pending requests, infinite heads, covered channels with no
sources) and requires *exact* equality against the Kleene-iterated
reference, including reuse of one precomputed solver across many label
sets (the per-window call pattern).
"""

from __future__ import annotations

import random

import pytest

from repro.sim.core import HorizonSolver, conservative_horizons


def random_graph(rng: random.Random):
    """A random channel graph plus its static lookahead inputs."""
    n = rng.randint(2, 10)
    edges: set[tuple[int, int]] = set()
    for _ in range(rng.randint(n, 3 * n)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    preds: list[set[int]] = [set() for _ in range(n)]
    for a, b in edges:
        preds[b].add(a)
    min_delay = rng.choice((0.125, 0.5, 1.0))
    # A partial matrix: missing pairs fall back to min_delay, like the
    # cluster's RTT-derived matrix (which only records pairs above the
    # floor).  Power-of-two multiples keep the float sums exactly
    # representable, so reference-vs-solver comparison can demand ==.
    lookahead = {
        edge: min_delay * rng.randint(1, 16)
        for edge in edges if rng.random() < 0.5
    }
    # Coverability is a per-channel property; leaving some channels
    # uncovered exercises the mixed static/dynamic fixed point.
    covered = frozenset(edge for edge in edges if rng.random() < 0.7)
    return preds, min_delay, lookahead, covered, edges


def random_labels(rng: random.Random, n: int, covered, edges):
    """One window's dynamic inputs: heads, out floors, pending requests."""
    heads = [
        float("inf") if rng.random() < 0.25 else rng.uniform(0.0, 50.0)
        for _ in range(n)
    ]
    # A covered channel without an out entry is the interesting case: the
    # coverability certificate says it carries replies only, so its floor
    # must chain through the reverse channel (or stay inf — "nobody can
    # ever send here", the greatest-fixed-point reading).
    out = {
        edge: rng.uniform(0.0, 100.0)
        for edge in covered if rng.random() < 0.8
    }
    pending = {
        edge: rng.uniform(0.0, 50.0)
        for edge in edges if rng.random() < 0.3
    }
    return heads, out, pending


class TestHorizonSolverEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_solver_matches_reference(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(50):
            preds, min_delay, lookahead, covered, edges = random_graph(rng)
            solver = HorizonSolver(preds, min_delay, lookahead, covered)
            # One precomputed solver, many label sets — the per-window call
            # pattern of ShardedSimulator and the mp coordinator.
            for _window in range(3):
                heads, out, pending = random_labels(
                    rng, len(preds), covered, edges)
                reference = conservative_horizons(
                    heads, preds, min_delay, lookahead,
                    (covered, out, pending),
                )
                assert solver.solve(heads, out, pending) == reference

    def test_empty_graph(self):
        solver = HorizonSolver([set(), set()], 1.0, None, frozenset())
        assert solver.solve([3.0, 7.0], {}, {}) == [float("inf")] * 2

    def test_uncovered_matches_matrix_only_reference(self):
        """With no covered channels the solver must equal the plain
        per-pair-matrix fixed point (promises add nothing)."""
        rng = random.Random(42)
        for _ in range(50):
            preds, min_delay, lookahead, _covered, edges = random_graph(rng)
            solver = HorizonSolver(preds, min_delay, lookahead, frozenset())
            heads, _out, _pending = random_labels(
                rng, len(preds), frozenset(), edges)
            reference = conservative_horizons(
                heads, preds, min_delay, lookahead)
            assert solver.solve(heads, {}, {}) == reference
