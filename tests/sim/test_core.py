"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationFinished
from repro.sim.core import Simulator
from repro.sim.env import Environment


def make_event(env, on_fire):
    event = env.event()
    event.add_callback(on_fire)
    return event


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_advances_to_event_time(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_run_until_advances_clock_even_when_queue_drains(self, env):
        env.timeout(1.0)
        env.run(until=100.0)
        assert env.now == 100.0

    def test_run_until_does_not_process_later_events(self, env):
        fired = []
        late = env.timeout(50.0)
        late.add_callback(lambda e: fired.append(env.now))
        env.run(until=10.0)
        assert fired == []
        env.run(until=60.0)
        assert fired == [50.0]

    def test_run_backwards_rejected(self, env):
        env.timeout(5.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)


class TestOrdering:
    def test_events_fire_in_time_order(self, env):
        order = []
        for delay in [5.0, 1.0, 3.0]:
            timeout = env.timeout(delay)
            timeout.add_callback(lambda e, d=delay: order.append(d))
        env.run()
        assert order == [1.0, 3.0, 5.0]

    def test_same_time_events_fire_in_scheduling_order(self, env):
        order = []
        for tag in "abcde":
            timeout = env.timeout(2.0)
            timeout.add_callback(lambda e, t=tag: order.append(t))
        env.run()
        assert order == list("abcde")

    def test_zero_delay_runs_after_current_callback(self, env):
        order = []

        def first(_event):
            order.append("first")
            inner = env.timeout(0.0)
            inner.add_callback(lambda e: order.append("inner"))

        env.timeout(1.0).add_callback(first)
        env.timeout(1.0).add_callback(lambda e: order.append("second"))
        env.run()
        assert order == ["first", "second", "inner"]


class TestStep:
    def test_step_empty_queue_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationFinished):
            sim.step()

    def test_peek_reports_next_time(self, env):
        env.timeout(7.5)
        assert env.sim.peek() == 7.5

    def test_peek_empty_is_infinite(self):
        assert Simulator().peek() == float("inf")

    def test_processed_event_counter(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        assert env.sim.processed_events == 2
