"""Cross-group 2PC under randomized workloads and coordinator crashes.

Property (a): merged cross-group histories from random 2PC mixes are
one-copy serializable — the *global* MVSG test passes, on top of every
group's own invariant suite.

Property (b): a coordinator crash between prepare and decide never commits
a proper subset of the participant groups — recovery resolves every
in-doubt transaction all-or-nothing.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig, WorkloadConfig
from repro.model import CROSS_GROUP
from repro.workload.driver import WorkloadDriver


def sharded_cluster(n_groups: int, seed: int = 0, instant: bool = True) -> Cluster:
    return Cluster(ClusterConfig(
        cluster_code="VVV",
        seed=seed,
        store=StoreConfig.instant() if instant else StoreConfig(),
        jitter=0.0 if instant else 0.08,
        placement=PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=n_groups,
        ),
    ))


def run_mixed_workload(cluster: Cluster, n_groups: int, protocol: str,
                       n_transactions: int, cross_group_fraction: float,
                       **overrides) -> WorkloadDriver:
    workload = WorkloadConfig(
        n_transactions=n_transactions,
        ops_per_transaction=4,
        n_attributes=10,
        n_rows=n_groups,
        n_threads=3,
        target_rate_per_thread=20.0,
        stagger_ms=5.0,
        cross_group_fraction=cross_group_fraction,
        **overrides,
    )
    driver = WorkloadDriver(cluster, workload, protocol)
    driver.install_data()
    driver.start()
    cluster.run()
    return driver


class TestCrossGroupWorkloads:
    def test_mixed_workload_commits_cross_group_transactions(self):
        cluster = sharded_cluster(4, seed=1)
        driver = run_mixed_workload(cluster, 4, "paxos-cp", 40, 0.5)
        cross = [o for o in driver.result.outcomes
                 if o.transaction.group == CROSS_GROUP]
        assert cross, "the mix produced no cross-group transactions"
        assert any(o.committed for o in cross)
        cluster.check_invariants_all(driver.result.outcomes)

    def test_zero_fraction_generates_the_exact_single_group_stream(self):
        # fraction 0 must not perturb the RNG stream: next_transaction_spec
        # must be next_group_transaction byte for byte, so single-group runs
        # (and bench_groups_scaling results) stay identical to PR 1.
        import random

        from repro.config import PlacementConfig, WorkloadConfig
        from repro.model import Placement
        from repro.workload.ycsb import YcsbWorkload

        placement = Placement(PlacementConfig(
            n_groups=4, assignment="range", key_universe=4,
        ))

        def generator(fraction):
            config = WorkloadConfig(
                n_rows=4, n_attributes=10, ops_per_transaction=5,
                cross_group_fraction=fraction,
            )
            return YcsbWorkload(config, random.Random(7), placement=placement)

        with_knob, without_knob = generator(0.0), generator(0.0)
        stream = [with_knob.next_transaction_spec() for _draw in range(40)]
        legacy = [without_knob.next_group_transaction() for _draw in range(40)]
        assert stream == [((group,), ops) for group, ops in legacy]

    def test_cross_fraction_requires_multi_group(self):
        cluster = Cluster(ClusterConfig(store=StoreConfig.instant()))
        workload = WorkloadConfig(cross_group_fraction=0.5)
        try:
            WorkloadDriver(cluster, workload, "paxos")
        except ValueError as error:
            assert "cross_group_fraction" in str(error)
        else:  # pragma: no cover - the guard must fire
            raise AssertionError("driver accepted a single-group 2PC mix")

    def test_cross_fraction_rejects_the_leased_leader(self):
        cluster = sharded_cluster(4)
        workload = WorkloadConfig(
            n_rows=4, n_attributes=10, cross_group_fraction=0.5,
        )
        try:
            WorkloadDriver(cluster, workload, "leased-leader")
        except ValueError as error:
            assert "leased" in str(error)
        else:  # pragma: no cover - the guard must fire
            raise AssertionError("driver accepted leased-leader 2PC")

    def test_failed_cross_group_attempts_keep_their_identity(self):
        # A cross-group attempt that dies before commit still counts in the
        # 2PC metrics instead of being misfiled under one participant group.
        from repro.harness.metrics import RunMetrics

        cluster = sharded_cluster(4, seed=2)
        driver = run_mixed_workload(cluster, 4, "paxos", 30, 1.0)
        cross = [o for o in driver.result.outcomes
                 if o.transaction.group == CROSS_GROUP]
        assert len(cross) == 30
        metrics = RunMetrics.from_outcomes(driver.result.outcomes)
        assert metrics.cross_group_transactions == 30


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    n_groups=st.sampled_from([3, 4, 8]),
    protocol=st.sampled_from(["paxos", "paxos-cp"]),
    fraction=st.sampled_from([0.2, 0.5, 1.0]),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_2pc_mixes_are_globally_one_copy_serializable(
    seed, n_groups, protocol, fraction
):
    """Property (a): per-group invariants AND the merged global MVSG test."""
    cluster = sharded_cluster(n_groups, seed=seed, instant=False)
    driver = run_mixed_workload(cluster, n_groups, protocol, 15, fraction)
    assert len(driver.result.outcomes) == 15
    # check_invariants_all runs recovery, the per-group §3 suite with 2PC
    # decisions applied, atomicity, no-orphaned-prepare, and the merged
    # cross-group MVSG oracle.
    cluster.check_invariants_all(driver.result.outcomes)


class TestRecoveryIdempotence:
    """``Cluster.recover_cross_group`` may run twice, or race a resuming
    coordinator, without ever flipping a decision — a gap the original
    coordinator-crash property test never exercised."""

    def _crashed_run(self):
        """A run with an in-doubt prepare: coordinator killed mid-2PC.

        Probes kill times until one leaves prepares without a durable
        decision (deterministic per probe — each builds a fresh cluster).
        """
        for kill_after_ms in (60.0, 90.0, 120.0, 150.0, 200.0, 260.0, 320.0):
            cluster = sharded_cluster(4, seed=23, instant=False)
            cluster.preload_placed({
                f"row{index}": {"a0": f"init{index}"} for index in range(4)
            })
            client = cluster.add_client("V1", protocol="paxos")

            def app():
                handle = yield from client.begin()
                yield from client.read(handle, "row0", "a0")
                client.write(handle, "row0", "a0", "x0")
                client.write(handle, "row2", "a0", "x2")
                yield from client.commit(handle)

            process = cluster.env.process(app())
            killer = cluster.env.timeout(kill_after_ms)
            killer.add_callback(lambda _event: process.kill("coordinator crash"))
            cluster.run()
            logs = cluster.finalize_all()
            gtids = {
                entry.gtid
                for log in logs.values() for entry in log.values()
                if entry.kind == "prepare"
            }
            undecided = gtids - set(cluster.cross_group_decisions())
            if undecided:
                return cluster, logs, undecided.pop()
        raise AssertionError("no probe produced an in-doubt prepare")

    def test_running_recovery_twice_is_a_fixpoint(self):
        cluster, logs, gtid = self._crashed_run()
        first = cluster.recover_cross_group(logs)
        assert gtid in first
        second = cluster.recover_cross_group(logs)
        assert second == first
        # A third pass that re-derives the logs from the stores agrees too.
        third = cluster.recover_cross_group()
        assert third == first
        cluster.check_cross_group_invariants([], logs, first)

    def test_late_coordinator_follows_the_recovered_decision(self):
        from repro.core.commit_2pc import TwoPhaseCommit

        cluster, logs, gtid = self._crashed_run()
        decisions = cluster.recover_cross_group(logs)
        participants = next(
            entry.participants
            for log in logs.values() for entry in log.values()
            if entry.kind == "prepare" and entry.gtid == gtid
        )
        # The crashed coordinator resumes *after* recovery already resolved
        # the transaction, and tries to drive its instance to COMMIT.  The
        # decision instance is single-slot Paxos: the recorded resolution
        # must win, and a second recovery pass must still agree.
        late = TwoPhaseCommit(cluster.add_client("V2", protocol="paxos"))
        process = cluster.env.process(
            late.decide(gtid, participants, commit=True)
        )
        cluster.run()
        decided = process.value
        assert decided is not None
        assert (decided.kind == "commit") == decisions[gtid]
        again = cluster.recover_cross_group()
        assert again[gtid] == decisions[gtid]
        cluster.check_cross_group_invariants([], cluster.finalize_all(), again)


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    kill_after_ms=st.floats(min_value=0.0, max_value=400.0),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_coordinator_crash_never_commits_a_proper_subset(seed, kill_after_ms):
    """Property (b): kill the coordinator at a random point mid-2PC.

    Whatever the crash timing — before any prepare, between prepares,
    between prepare and decide, after decide — recovery must leave every
    participant group agreeing on one all-or-nothing outcome.
    """
    cluster = sharded_cluster(4, seed=seed, instant=False)
    cluster.preload_placed({
        f"row{index}": {"a0": f"init{index}"} for index in range(4)
    })
    client = cluster.add_client("V1", protocol="paxos")

    def app():
        handle = yield from client.begin()
        yield from client.read(handle, "row0", "a0")
        yield from client.read(handle, "row2", "a0")
        client.write(handle, "row0", "a0", "x0")
        client.write(handle, "row2", "a0", "x2")
        client.write(handle, "row3", "a0", "x3")
        yield from client.commit(handle)

    process = cluster.env.process(app())
    killer = cluster.env.timeout(kill_after_ms)
    killer.add_callback(lambda _event: process.kill("coordinator crash"))
    cluster.run()

    logs = cluster.finalize_all()
    decisions = cluster.recover_cross_group(logs)
    # All-or-nothing: with a COMMIT decision every participant holds the
    # prepare; any other state resolves to ABORT for every group.  The
    # checker also runs the merged MVSG test.
    cluster.check_cross_group_invariants([], logs, decisions)
    prepares = {
        group: entry
        for group, log in logs.items()
        for entry in log.values()
        if entry.kind == "prepare"
    }
    if prepares:
        (gtid,) = {entry.gtid for entry in prepares.values()}
        if decisions.get(gtid):
            assert set(prepares) == {"group-0", "group-2", "group-3"}
    # Data rows reflect the decision uniformly (served through the
    # decision-gated service read path): all three writes or none.
    reader = cluster.add_client("V2")

    def check(row):
        handle = yield from reader.begin(key=row)
        value = yield from reader.read(handle, row, "a0")
        return value

    applied = []
    for row in ("row0", "row2", "row3"):
        process = cluster.env.process(check(row))
        cluster.run()
        applied.append(str(process.value).startswith("x"))
    assert len(set(applied)) == 1, f"partial commit: {applied}"
