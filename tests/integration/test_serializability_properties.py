"""Property-based end-to-end serializability (the paper's Theorems 2 & 3).

For randomized workloads, seeds, cluster shapes, protocols, message-loss
rates, and injected outages, the full stack must preserve:

* (R1) replica agreement, (L1)–(L3), read-only snapshot consistency —
  via the log-replay invariant checkers; and
* one-copy serializability of the *observed* history — via the independent
  MVSG oracle.

These run the entire system (client library, services, Paxos, the store,
the network), so each example is a complete multi-datacenter simulation.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import WorkloadConfig
from repro.failures import FailureInjector
from repro.workload.driver import WorkloadDriver
from tests.conftest import make_cluster

GROUP = "group-0"

workloads = st.fixed_dictionaries({
    "n_transactions": st.integers(min_value=5, max_value=25),
    "ops_per_transaction": st.integers(min_value=1, max_value=8),
    "n_attributes": st.sampled_from([3, 10, 50]),
    "n_threads": st.integers(min_value=1, max_value=4),
    "target_rate_per_thread": st.sampled_from([2.0, 8.0, 30.0]),
    "read_fraction": st.sampled_from([0.0, 0.5, 0.9]),
})

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def execute(cluster, protocol, workload_params):
    workload = WorkloadConfig(stagger_ms=5.0, **workload_params)
    driver = WorkloadDriver(cluster, workload, protocol)
    driver.install_data()
    driver.start()
    cluster.run()
    return driver.result.outcomes


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    protocol=st.sampled_from(["paxos", "paxos-cp"]),
    code=st.sampled_from(["VV", "VVV", "COV"]),
    params=workloads,
)
@common_settings
def test_random_workloads_stay_one_copy_serializable(seed, protocol, code, params):
    cluster = make_cluster(code, seed=seed, instant_store=False)
    outcomes = execute(cluster, protocol, params)
    assert len(outcomes) == params["n_transactions"]
    cluster.check_invariants(GROUP, outcomes)


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    protocol=st.sampled_from(["paxos", "paxos-cp"]),
    loss=st.sampled_from([0.02, 0.10]),
    params=workloads,
)
@common_settings
def test_serializable_under_message_loss(seed, protocol, loss, params):
    cluster = make_cluster("VVV", seed=seed, loss=loss, instant_store=False)
    outcomes = execute(cluster, protocol, params)
    cluster.check_invariants(GROUP, outcomes)


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    protocol=st.sampled_from(["paxos", "paxos-cp"]),
    victim=st.sampled_from(["V1", "V2", "V3"]),
    outage_start=st.sampled_from([0.0, 500.0, 2_000.0]),
    params=workloads,
)
@common_settings
def test_serializable_under_minority_outage(seed, protocol, victim,
                                            outage_start, params):
    cluster = make_cluster("VVV", seed=seed, instant_store=False)
    injector = FailureInjector(cluster)
    injector.outage(victim, start_ms=outage_start, duration_ms=3_000.0)
    outcomes = execute(cluster, protocol, params)
    cluster.check_invariants(GROUP, outcomes)


@given(seed=st.integers(min_value=0, max_value=100_000), params=workloads)
@common_settings
def test_leased_leader_serializable(seed, params):
    cluster = make_cluster("VVV", seed=seed, instant_store=False)
    outcomes = execute(cluster, "leased-leader", params)
    cluster.check_invariants(GROUP, outcomes)
