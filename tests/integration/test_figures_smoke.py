"""Tiny-scale smoke of every figure grid.

The real regeneration lives in ``benchmarks/``; this guarantees under plain
``pytest tests/`` that every grid cell is executable end to end (cluster
construction, per-DC instances, invariant checking, reporting) so a broken
cell is caught before a benchmark run.
"""

import pytest

from repro.harness.experiment import run_once
from repro.harness.figures import ALL_FIGURES
from repro.harness.report import format_cells


@pytest.mark.parametrize("figure_name", sorted(ALL_FIGURES))
def test_every_grid_cell_executes(figure_name):
    grid = ALL_FIGURES[figure_name]().scaled(4)
    results = []
    for cell in grid.cells[:4]:  # two cluster shapes × two protocols
        results.append(run_once(cell, seed=1))
    text = format_cells(results, title=grid.figure)
    assert grid.figure in text
    for result in results:
        assert result.metrics.n_transactions in (4, 12)  # 12 = per-DC (×3)


def test_grid_cells_deterministic():
    grid = ALL_FIGURES["figure6"]().scaled(6)
    cell = grid.cells[0]
    first = run_once(cell, seed=9)
    second = run_once(cell, seed=9)
    assert first.metrics.commits == second.metrics.commits
    assert first.metrics.mean_all_latency_ms == second.metrics.mean_all_latency_ms
    assert [o.transaction.tid for o in first.outcomes] == [
        o.transaction.tid for o in second.outcomes
    ]
