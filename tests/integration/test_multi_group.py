"""End-to-end multi-group runs: independent logs, per-group serializability.

Satellite coverage for the sharded transaction layer: (a) transactions fan
out over many entity groups, (b) every group's history independently passes
the §3 invariant suite and the MVSG one-copy-serializability oracle, and
(c) group logs never interleave — each is its own contiguous position
sequence and no transaction appears in more than one group's log.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig, WorkloadConfig
from repro.serializability.checker import is_one_copy_serializable
from repro.serializability.history import MVHistory
from repro.wal.invariants import global_log
from repro.workload.driver import WorkloadDriver


def sharded_cluster(n_groups: int, seed: int = 0, instant: bool = True) -> Cluster:
    return Cluster(ClusterConfig(
        cluster_code="VVV",
        seed=seed,
        store=StoreConfig.instant() if instant else StoreConfig(),
        jitter=0.0 if instant else 0.08,
        placement=PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=n_groups,
        ),
    ))


def run_workload(cluster: Cluster, n_groups: int, protocol: str = "paxos-cp",
                 n_transactions: int = 24, **overrides):
    workload = WorkloadConfig(
        n_transactions=n_transactions,
        ops_per_transaction=4,
        n_attributes=10,
        n_rows=n_groups,
        n_threads=3,
        target_rate_per_thread=20.0,
        stagger_ms=5.0,
        **overrides,
    )
    driver = WorkloadDriver(cluster, workload, protocol)
    driver.install_data()
    driver.start()
    cluster.run()
    return driver


class TestMultiGroupRuns:
    def test_transactions_fan_out_over_groups(self):
        cluster = sharded_cluster(4)
        driver = run_workload(cluster, 4, n_transactions=40)
        groups_hit = {o.transaction.group for o in driver.result.outcomes}
        assert len(groups_hit) > 1
        assert groups_hit <= set(cluster.placement.groups)

    def test_every_group_history_is_one_copy_serializable(self):
        cluster = sharded_cluster(4)
        driver = run_workload(cluster, 4, n_transactions=40)
        cluster.check_invariants_all(driver.result.outcomes)
        # Belt and braces: run the MVSG oracle per group directly.
        for group in cluster.groups:
            history = MVHistory.from_log(
                global_log(cluster.replicas(group)),
                cluster.initial_image_for(group),
            )
            ok, cycle = is_one_copy_serializable(history)
            assert ok, (group, cycle)

    def test_group_logs_never_interleave(self):
        cluster = sharded_cluster(4)
        driver = run_workload(cluster, 4, n_transactions=40)
        logs = cluster.finalize_all()
        seen_tids: dict[str, str] = {}
        for group, log in logs.items():
            # Each group's log is its own contiguous sequence from 1.
            assert sorted(log) == list(range(1, len(log) + 1)), group
            for entry in log.values():
                for txn in entry.transactions:
                    assert txn.group == group
                    assert seen_tids.setdefault(txn.tid, group) == group, (
                        f"{txn.tid} logged in {seen_tids[txn.tid]} and {group}"
                    )
        committed = [o for o in driver.result.outcomes if o.committed
                     and not o.transaction.is_read_only]
        assert {o.transaction.tid for o in committed} <= set(seen_tids)

    def test_per_datacenter_multi_group_mode(self):
        cluster = sharded_cluster(2)
        workload = WorkloadConfig(
            n_transactions=12, ops_per_transaction=3, n_attributes=10,
            n_rows=2, n_threads=2, target_rate_per_thread=20.0, stagger_ms=5.0,
        )
        drivers = WorkloadDriver.per_datacenter(
            cluster, workload, "paxos-cp", shared_group=False,
        )
        drivers[0].install_data()
        for driver in drivers:
            driver.start()
        cluster.run()
        outcomes = [o for d in drivers for o in d.result.outcomes]
        assert len(outcomes) == 12 * 3
        cluster.check_invariants_all(outcomes)

    def test_multi_group_requires_sharded_placement(self):
        cluster = Cluster(ClusterConfig(store=StoreConfig.instant()))
        with pytest.raises(ValueError):
            WorkloadDriver(cluster, WorkloadConfig(), "paxos", multi_group=True)

    def test_single_group_workload_must_fit_its_group(self):
        # Rows spanning groups on a sharded cluster fail at construction,
        # not with CrossGroupTransaction mid-run.
        cluster = sharded_cluster(4)
        workload = WorkloadConfig(n_rows=4, n_attributes=10, group="group-0")
        with pytest.raises(ValueError, match="route to other groups"):
            WorkloadDriver(cluster, workload, "paxos", multi_group=False)

    def test_zipfian_group_choice_skews_to_group_0(self):
        cluster = sharded_cluster(4)
        driver = run_workload(
            cluster, 4, n_transactions=60,
            group_distribution="zipfian", group_zipfian_theta=0.99,
        )
        counts: dict[str, int] = {}
        for outcome in driver.result.outcomes:
            group = outcome.transaction.group
            counts[group] = counts.get(group, 0) + 1
        assert counts["group-0"] == max(counts.values())


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    n_groups=st.sampled_from([2, 3, 8]),
    protocol=st.sampled_from(["paxos", "paxos-cp"]),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_multi_group_workloads_stay_serializable(seed, n_groups, protocol):
    cluster = sharded_cluster(n_groups, seed=seed, instant=False)
    driver = run_workload(cluster, n_groups, protocol=protocol, n_transactions=15)
    assert len(driver.result.outcomes) == 15
    cluster.check_invariants_all(driver.result.outcomes)
