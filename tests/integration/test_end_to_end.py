"""End-to-end scenarios across the whole stack.

Every scenario finishes with the full §3 invariant suite plus the MVSG
serializability oracle (``Cluster.check_invariants``).
"""

import pytest

from repro.config import WorkloadConfig
from repro.model import TransactionStatus
from repro.workload.driver import WorkloadDriver
from tests.conftest import make_cluster, run_txn

GROUP = "group-0"


def run_workload(cluster, protocol, **overrides):
    defaults = dict(
        n_transactions=30, ops_per_transaction=6, n_attributes=15,
        n_threads=3, target_rate_per_thread=8.0, stagger_ms=15.0,
    )
    defaults.update(overrides)
    workload = WorkloadConfig(**defaults)
    driver = WorkloadDriver(cluster, workload, protocol)
    driver.install_data()
    driver.start()
    cluster.run()
    return driver.result.outcomes


@pytest.mark.parametrize("protocol", ["paxos", "paxos-cp", "leased-leader"])
class TestWorkloadsStaySerializable:
    def test_instant_store(self, protocol):
        cluster = make_cluster(seed=1)
        outcomes = run_workload(cluster, protocol)
        cluster.check_invariants(GROUP, outcomes)
        assert any(outcome.committed for outcome in outcomes)

    def test_calibrated_store_with_jitter(self, protocol):
        cluster = make_cluster(seed=2, instant_store=False, jitter=0.08)
        outcomes = run_workload(cluster, protocol)
        cluster.check_invariants(GROUP, outcomes)

    def test_mixed_region_cluster(self, protocol):
        cluster = make_cluster("COV", seed=3, instant_store=False)
        outcomes = run_workload(cluster, protocol, n_transactions=20)
        cluster.check_invariants(GROUP, outcomes)

    def test_two_replica_cluster(self, protocol):
        cluster = make_cluster("VV", seed=4)
        outcomes = run_workload(cluster, protocol, n_transactions=20)
        cluster.check_invariants(GROUP, outcomes)

    def test_five_replica_cluster(self, protocol):
        cluster = make_cluster("VVVOC", seed=5, instant_store=False)
        outcomes = run_workload(cluster, protocol, n_transactions=20)
        cluster.check_invariants(GROUP, outcomes)


class TestCrossProtocolBehaviour:
    def test_cp_commits_at_least_as_many(self):
        """Under identical contention, Paxos-CP must not commit fewer
        transactions than basic Paxos (the paper's headline)."""
        results = {}
        for protocol in ["paxos", "paxos-cp"]:
            cluster = make_cluster(seed=7, instant_store=False)
            outcomes = run_workload(
                cluster, protocol,
                n_transactions=60, target_rate_per_thread=4.0, n_attributes=100,
            )
            cluster.check_invariants(GROUP, outcomes)
            results[protocol] = sum(1 for o in outcomes if o.committed)
        assert results["paxos-cp"] >= results["paxos"]

    def test_promotions_only_under_cp(self):
        for protocol, expect_promotions in [("paxos", False), ("paxos-cp", True)]:
            cluster = make_cluster(seed=8, instant_store=False)
            outcomes = run_workload(
                cluster, protocol,
                n_transactions=60, target_rate_per_thread=6.0, n_attributes=200,
            )
            promoted = [o for o in outcomes if o.promotions > 0]
            if expect_promotions:
                assert promoted, "CP run produced no promotions at high contention"
            else:
                assert not promoted

    def test_multi_group_independence(self):
        """Transactions on different groups never interfere (§2.1)."""
        cluster = make_cluster(seed=9)
        cluster.preload("alpha", {"row0": {"x": 0}})
        cluster.preload("beta", {"row0": {"x": 0}})
        outcomes = []

        def make_proc(group, dc):
            client = cluster.add_client(dc, protocol="paxos-cp")

            def run():
                handle = yield from client.begin(group)
                value = yield from client.read(handle, "row0", "x")
                client.write(handle, "row0", "x", f"{group}-written")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        make_proc("alpha", "V1")
        make_proc("beta", "V2")
        cluster.run()
        assert all(outcome.committed for outcome in outcomes)
        cluster.check_invariants("alpha", [o for o in outcomes
                                           if o.transaction.group == "alpha"])
        cluster.check_invariants("beta", [o for o in outcomes
                                          if o.transaction.group == "beta"])


class TestBankInvariant:
    """The classic serializability demonstration: concurrent transfers
    preserve the total balance exactly when the system is serializable."""

    def test_concurrent_transfers_conserve_money(self):
        cluster = make_cluster(seed=10, instant_store=False)
        accounts = {f"acct{i}": {"balance": 100} for i in range(4)}
        cluster.preload("bank", accounts)
        outcomes = []

        def transfer(dc, src, dst, amount, delay):
            client = cluster.add_client(dc, protocol="paxos-cp")

            def run():
                yield cluster.env.timeout(delay)
                handle = yield from client.begin("bank")
                src_balance = yield from client.read(handle, src, "balance")
                dst_balance = yield from client.read(handle, dst, "balance")
                client.write(handle, src, "balance", src_balance - amount)
                client.write(handle, dst, "balance", dst_balance + amount)
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        transfers = [
            ("V1", "acct0", "acct1", 10, 0.0),
            ("V2", "acct1", "acct2", 20, 1.0),
            ("V3", "acct2", "acct3", 30, 2.0),
            ("V1", "acct3", "acct0", 40, 3.0),
            ("V2", "acct0", "acct2", 5, 4.0),
        ]
        for args in transfers:
            transfer(*args)
        cluster.run()
        cluster.check_invariants("bank", outcomes)
        # Replay the committed log to compute final balances.
        log = cluster.finalize("bank")
        balances = {name: 100 for name in accounts}
        for position in sorted(log):
            for txn in log[position].transactions:
                for (row, _attr), value in txn.writes:
                    balances[row] = value
        assert sum(balances.values()) == 400, balances
