"""Randomized fault-injection campaign over the full cross-group toolbox.

Each seed deterministically derives a scenario — commit protocol, workload
mix (single-group, 2PC cross-group, asynchronous queue sends), and a fault
schedule (datacenter outages, partitions, loss episodes, and delivery-pump
crashes with later restarts) — runs it to quiescence, and then holds the
whole system to its obligations at once:

* the §3 per-group suite — (R1), (L1)–(L3), read-only consistency, and the
  MVSG oracle — via ``check_invariants_all``;
* 2PC recovery and atomicity plus **global** one-copy serializability over
  the merged history;
* the queue-delivery invariant: every committed send applied exactly once
  at its receiver, in sender order — crashing the pump mid-flight (and
  letting a restarted pump redeliver from the durable watermark) must never
  drop or double-apply a message.

The schedules bias toward the scenario the queue layer exists to survive:
whenever the mix enqueues sends, at least one pump is killed mid-run and
restarted.  Leased-leader seeds run the pure single-group workload (that
protocol owns its group's log positions, so neither 2PC prepares nor pump
appends may compete with it) under majority-preserving faults — its design
explicitly scopes out lease takeover, so only the Paxos protocols face the
full fault menu.

CI runs a reduced seed subset by id (see .github/workflows/ci.yml); the
full campaign is part of tier-1.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster
from repro.config import (
    ClusterConfig,
    CrashWindow,
    FaultScheduleConfig,
    LossWindow,
    OutageWindow,
    PartitionWindow,
    PlacementConfig,
    PumpCrash,
    WorkloadConfig,
)
from repro.failures.schedule import install_fault_schedule
from repro.workload.driver import WorkloadDriver

N_SEEDS = 20
SEEDS = range(N_SEEDS)


def build_scenario(seed: int):
    """Everything one campaign seed runs, derived deterministically."""
    rng = random.Random(0xFA17 + seed * 9973)
    n_groups = rng.choice([3, 4])
    protocol = rng.choice(["paxos", "paxos-cp", "paxos-cp", "leased-leader"])
    if protocol == "leased-leader":
        queue_fraction, cross_fraction = 0.0, 0.0
    else:
        queue_fraction = rng.choice([0.25, 0.4, 0.6])
        cross_fraction = rng.choice([0.0, 0.0, 0.2, 0.3])
    cluster = Cluster(ClusterConfig(
        cluster_code="VVV", seed=seed,
        placement=PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=n_groups,
        ),
    ))
    workload = WorkloadConfig(
        n_transactions=rng.choice([15, 18, 21]),
        ops_per_transaction=3,
        n_attributes=8,
        n_rows=n_groups,
        n_threads=3,
        target_rate_per_thread=20.0,
        stagger_ms=5.0,
        queue_fraction=queue_fraction,
        cross_group_fraction=cross_fraction,
    )
    driver = WorkloadDriver(cluster, workload, protocol)
    return rng, cluster, driver, protocol, queue_fraction


def draw_fault_schedule(rng, cluster, pumps, protocol,
                        queue_fraction) -> FaultScheduleConfig:
    """This seed's fault schedule as declarative config.

    The pre-crash draw sequence is pinned — byte-identical to the
    historical imperative version, so every seed's network-fault scenario
    is unchanged; the service-replica crash draws append strictly after
    it, extending each scenario without perturbing it.
    """
    datacenters = list(cluster.topology.names)
    outages, partitions, losses, crashes = [], [], [], []

    if queue_fraction > 0:
        # The headline fault: crash a delivery pump mid-flight and restart
        # it later — the restarted pump must resume from the durable
        # watermark, and redelivery must deduplicate.
        victim = rng.choice(sorted(pumps))
        kill_ms = rng.uniform(80.0, 500.0)
        restart_ms = kill_ms + rng.uniform(40.0, 300.0)
        crashes.append(PumpCrash(
            group=victim, kill_ms=kill_ms, restart_ms=restart_ms,
            restart_poll_ms=15.0,
        ))

    # The leased leader's fault scope is narrower by design (lease takeover
    # is out of scope, §7): it keeps committing through any fault that
    # leaves the leader a majority, so its seeds draw only those — a
    # non-home datacenter outage or a partition between the two non-home
    # sites.  The Paxos protocols take the full menu.
    leased = protocol == "leased-leader"
    home = cluster.home_dc
    non_home = [dc for dc in datacenters if dc != home]
    for _fault in range(rng.randint(1, 2)):
        kind = rng.choice(["outage", "partition"] if leased
                          else ["outage", "partition", "loss"])
        start = rng.uniform(50.0, 700.0)
        duration = rng.uniform(100.0, 400.0)
        if kind == "outage":
            dc = rng.choice(non_home if leased else datacenters)
            outages.append(OutageWindow(dc, start, duration))
        elif kind == "partition":
            dc_a, dc_b = non_home[:2] if leased else rng.sample(datacenters, 2)
            partitions.append(PartitionWindow(dc_a, dc_b, start, duration))
        else:
            probability = rng.uniform(0.05, 0.3)
            losses.append(LossWindow(probability, start, duration))
    # Every seed also crash-restarts a service replica (sometimes two)
    # mid-run: in-flight handler processes die, volatile state — learner
    # caches, apply projections, delivery marks, leases — is erased, and
    # the restarted node must recover purely from durable state (the WAL
    # plus the acceptor table).  The amnesia detector inside
    # ``check_invariants_all`` holds every restart to that: durable
    # promises may never regress and chosen values may never change.
    node_crashes = []
    for _crash in range(rng.randint(1, 2)):
        victim_dc = rng.choice(datacenters)
        start = rng.uniform(50.0, 600.0)
        down = rng.uniform(80.0, 350.0)
        node_crashes.append(CrashWindow(victim_dc, start, down))
    return FaultScheduleConfig(
        outages=tuple(outages), partitions=tuple(partitions),
        loss_windows=tuple(losses), crashes=tuple(node_crashes),
        pump_crashes=tuple(crashes),
    )


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s:02d}" for s in SEEDS])
def test_fault_schedule_preserves_every_invariant(seed):
    rng, cluster, driver, protocol, queue_fraction = build_scenario(seed)
    driver.install_data()
    pumps = {}
    if queue_fraction > 0:
        pumps = cluster.start_queue_pumps(poll_ms=15.0)
    config = draw_fault_schedule(rng, cluster, pumps, protocol, queue_fraction)
    schedule = install_fault_schedule(cluster, config, pumps=pumps)
    driver.start()
    cluster.run()

    outcomes = driver.result.outcomes
    assert len(outcomes) == driver.workload.n_transactions, schedule

    # The whole obligation in one call: 2PC recovery, queue drain, the §3
    # per-group suite, atomicity, exactly-once delivery in sender order,
    # and global 1SR over the merged history.
    logs = cluster.finalize_all()
    cluster.check_invariants_all(outcomes, logs=logs)

    # Global serializability also holds for runs the cross-group checker
    # did not trigger for (pure single-group leased-leader seeds).
    ok, cycle = cluster.check_global_serializability(logs)
    assert ok, f"global MVSG cycle {cycle} under schedule {schedule}"

    if queue_fraction > 0:
        committed_sends = sum(
            len(outcome.transaction.sends)
            for outcome in outcomes if outcome.committed
        )
        stats = cluster.queue_stats(logs)
        assert stats.sends == committed_sends, schedule
        # Exact accounting even across pump crash + restart: the drain ran
        # inside check_invariants_all, so nothing may remain undelivered
        # and the two delivery buckets must account for every send.
        assert stats.undelivered == 0, schedule
        assert stats.applied_online + stats.drained_offline == stats.sends, schedule
