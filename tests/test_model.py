"""Tests for the shared data model."""

from repro.model import (
    AbortReason,
    Transaction,
    TransactionOutcome,
    TransactionStatus,
    is_serializable_sequence,
    union_write_set,
)
from tests.helpers import txn


class TestTransaction:
    def test_write_set_derived_from_writes(self):
        t = txn("t", writes={"a": 1, "b": 2})
        assert t.write_set == {("row0", "a"), ("row0", "b")}

    def test_duplicate_item_writes_keep_order(self):
        t = Transaction(
            tid="t", group="g", read_set=frozenset(),
            writes=((("r", "a"), 1), (("r", "a"), 2)),
            read_position=0,
        )
        assert t.write_image() == {"r": {"a": 2}}  # last write wins

    def test_multi_row_write_image(self):
        t = Transaction(
            tid="t", group="g", read_set=frozenset(),
            writes=((("r1", "a"), 1), (("r2", "b"), 2)),
            read_position=0,
        )
        assert t.write_image() == {"r1": {"a": 1}, "r2": {"b": 2}}

    def test_read_only_detection(self):
        assert txn("t", reads={"a": 0}).is_read_only
        assert not txn("t", reads={"a": 0}, writes={"b": 1}).is_read_only

    def test_reads_from_is_directional(self):
        reader = txn("r", reads={"x": 0})
        writer = txn("w", writes={"x": 1})
        assert reader.reads_from(writer)
        assert not writer.reads_from(reader)
        assert not reader.reads_from(reader)

    def test_str_is_tid(self):
        assert str(txn("t42")) == "t42"


class TestSequencePredicates:
    def test_empty_sequence_serializable(self):
        assert is_serializable_sequence([])

    def test_single_transaction_serializable(self):
        assert is_serializable_sequence([txn("t", reads={"a": 0}, writes={"a": 1})])

    def test_chain_of_three_with_one_conflict(self):
        ok = [
            txn("t1", writes={"a": 1}),
            txn("t2", reads={"b": 0}, writes={"c": 1}),
            txn("t3", reads={"c": 0}),  # reads what t2 wrote → invalid
        ]
        assert not is_serializable_sequence(ok)
        assert is_serializable_sequence([ok[2], ok[1], ok[0]])

    def test_union_write_set_empty(self):
        assert union_write_set([]) == frozenset()


class TestOutcome:
    def test_latency(self):
        outcome = TransactionOutcome(
            transaction=txn("t", writes={"a": 1}),
            status=TransactionStatus.COMMITTED,
            begin_time=10.0, end_time=35.5,
        )
        assert outcome.latency_ms == 25.5
        assert outcome.committed

    def test_aborted_outcome(self):
        outcome = TransactionOutcome(
            transaction=txn("t", writes={"a": 1}),
            status=TransactionStatus.ABORTED,
            abort_reason=AbortReason.PROMOTION_CONFLICT,
        )
        assert not outcome.committed
        assert str(outcome.abort_reason) == "promotion_conflict"

    def test_status_strings(self):
        assert str(TransactionStatus.COMMITTED) == "committed"
        assert str(TransactionStatus.ABORTED) == "aborted"
