"""Per-group home override: ``PlacementConfig.group_homes`` (leader placement)."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig
from repro.model import Placement


def config(n_groups: int = 4, **kwargs) -> PlacementConfig:
    return PlacementConfig(
        n_groups=n_groups, assignment="range", key_universe=n_groups, **kwargs
    )


class TestPlacementConfig:
    def test_default_has_no_overrides(self):
        placement = Placement(config())
        assert placement.home_of("group-0", "V1") == "V1"
        assert placement.home_of("group-3", "C1") == "C1"

    def test_override_applies_only_to_named_groups(self):
        placement = Placement(config(group_homes={"group-1": "O1"}))
        assert placement.home_of("group-1", "V1") == "O1"
        assert placement.home_of("group-0", "V1") == "V1"

    def test_unknown_group_names_are_rejected(self):
        with pytest.raises(ValueError, match="unknown groups"):
            config(group_homes={"group-9": "V1"})


class TestClusterWiring:
    def make(self, group_homes):
        return Cluster(ClusterConfig(
            cluster_code="VOV",  # V1, O1, V2 (Virginia, Oregon, Virginia)
            store=StoreConfig.instant(), jitter=0.0,
            placement=config(group_homes=group_homes),
        ))

    def test_unknown_datacenter_is_rejected(self):
        with pytest.raises(ValueError, match="not a datacenter"):
            self.make({"group-0": "Z9"})

    def test_position_one_leader_follows_the_override(self):
        cluster = self.make({"group-2": cluster_second_dc()})
        for dc, service in cluster.services.items():
            assert service.leader_dc("group-2", 1) == cluster_second_dc()
            assert service.leader_dc("group-0", 1) == cluster.home_dc

    def test_begin_reports_the_override_leader_on_an_empty_log(self):
        cluster = self.make({"group-2": cluster_second_dc()})
        cluster.preload_placed({f"row{i}": {"a0": "init"} for i in range(4)})
        client = cluster.add_client("V1")

        def app():
            overridden = yield from client.begin("group-2")
            default = yield from client.begin("group-0")
            return overridden, default

        process = cluster.env.process(app())
        cluster.run()
        overridden, default = process.value
        assert overridden.leader_dc == cluster_second_dc()
        assert default.leader_dc == cluster.home_dc

    def test_default_preserves_single_home_behaviour(self):
        cluster = self.make(None)
        for service in cluster.services.values():
            for group in cluster.placement.groups:
                assert service.leader_dc(group, 1) == cluster.home_dc

    def test_transactions_commit_under_an_override(self):
        cluster = self.make({"group-1": cluster_second_dc()})
        cluster.preload_placed({f"row{i}": {"a0": "init"} for i in range(4)})
        client = cluster.add_client("V2", protocol="paxos-cp")

        def app():
            handle = yield from client.begin(key="row1")
            yield from client.read(handle, "row1", "a0")
            client.write(handle, "row1", "a0", "updated")
            outcome = yield from client.commit(handle)
            return outcome

        process = cluster.env.process(app())
        cluster.run()
        assert process.value.committed
        cluster.check_invariants("group-1", [process.value])


def cluster_second_dc() -> str:
    """The second datacenter of the VOV preset (the Oregon zone)."""
    return "O"
