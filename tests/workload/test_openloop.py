"""The open-loop traffic engine: arrivals, users, admission, determinism."""

from __future__ import annotations

from dataclasses import replace
from random import Random

import pytest

from repro.config import ClusterConfig, PlacementConfig, WorkloadConfig
from repro.harness.experiment import ExperimentSpec, run_once
from repro.harness.parallel import metrics_digest, run_cells
from repro.workload.openloop import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    LogicalUserModel,
    PoissonArrivals,
    make_arrival_process,
)


def arrival_times(process, seed: int, horizon: float) -> list[float]:
    rng = Random(seed)
    times, t = [], 0.0
    while True:
        t += process.next_interarrival(rng, t)
        if t >= horizon:
            return times
        times.append(t)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------


ALL_KINDS = ("poisson", "diurnal", "flash")


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_arrival_sequences_are_seed_stable(kind):
    workload = WorkloadConfig(open_loop=True, arrival=kind)
    make = lambda: make_arrival_process(workload, rate_per_ms=0.05)  # noqa: E731
    a = arrival_times(make(), seed=42, horizon=20_000.0)
    b = arrival_times(make(), seed=42, horizon=20_000.0)
    c = arrival_times(make(), seed=43, horizon=20_000.0)
    assert a == b, "same seed must reproduce the identical arrival stream"
    assert a != c, "different seeds must diverge"
    assert len(a) > 100


def test_poisson_rate_is_respected():
    times = arrival_times(PoissonArrivals(0.1), seed=7, horizon=100_000.0)
    # 0.1/ms over 100s -> ~10000 arrivals; Poisson sd ~100.
    assert 9_500 <= len(times) <= 10_500


def test_diurnal_rate_modulates_with_mean_preserved():
    process = DiurnalArrivals(0.1, period_ms=10_000.0, trough_fraction=0.2)
    times = arrival_times(process, seed=7, horizon=100_000.0)
    assert 9_000 <= len(times) <= 11_000, "time-average rate must stay ~mean"
    # First quarter-period (near the trough) vs the half-period crest.
    trough = sum(1 for t in times if t % 10_000.0 < 2_500.0)
    crest = sum(1 for t in times if 3_750.0 <= t % 10_000.0 < 6_250.0)
    assert crest > 2 * trough


def test_flash_crowd_spikes_in_window():
    process = FlashCrowdArrivals(0.05, flash_at_ms=5_000.0,
                                 flash_duration_ms=2_000.0, multiplier=10.0)
    times = arrival_times(process, seed=7, horizon=20_000.0)
    inside = sum(1 for t in times if 5_000.0 <= t < 7_000.0)
    before = sum(1 for t in times if 3_000.0 <= t < 5_000.0)
    # Same-width windows at 10x vs 1x the base rate.
    assert inside > 4 * max(before, 1)


# ----------------------------------------------------------------------
# Logical users
# ----------------------------------------------------------------------


def test_user_model_is_skewed_and_bounded():
    users = LogicalUserModel(1_000_000, theta=0.99)
    rng = Random(3)
    draws = [users.sample_user(rng, now=0.0) for _ in range(5_000)]
    assert all(0 <= user < 1_000_000 for user in draws)
    top = sum(1 for user in draws if user < 10)
    # Zipf(0.99) puts a large share on the head ranks; uniform would give
    # 10/1e6 of the mass (~0 draws in 5000).
    assert top > 500


def test_hot_spot_migrates_with_time():
    users = LogicalUserModel(1_000_000, theta=0.99, hot_shift_period_ms=1_000.0)
    offset0 = users.hot_offset(0.0)
    offset1 = users.hot_offset(1_500.0)
    offset2 = users.hot_offset(2_500.0)
    assert offset0 == 0
    assert len({offset0, offset1, offset2}) == 3, "hot spot must move each epoch"
    # The same rank maps to different users across epochs, same user within.
    rng_a, rng_b = Random(5), Random(5)
    early = [users.sample_user(rng_a, now=100.0) for _ in range(200)]
    late = [users.sample_user(rng_b, now=1_600.0) for _ in range(200)]
    assert early != late
    assert [(u - offset1) % 1_000_000 for u in late] == early


def test_static_model_has_fixed_hot_spot():
    users = LogicalUserModel(1_000_000, theta=0.99)
    assert users.hot_offset(0.0) == users.hot_offset(1e9) == 0


def test_zipf_sampler_matches_exact_distribution_on_small_n():
    # The O(1) sampler's hybrid zetan vs an exact small population.
    users = LogicalUserModel(100, theta=0.6)
    rng = Random(11)
    counts = [0] * 100
    for _ in range(20_000):
        counts[users.sample_user(rng, 0.0)] += 1
    assert counts[0] > counts[10] > counts[90]
    expected_head = sum(1.0 / (r + 1) ** 0.6 for r in range(10)) / sum(
        1.0 / (r + 1) ** 0.6 for r in range(100)
    )
    head = sum(counts[:10]) / 20_000
    assert abs(head - expected_head) < 0.05


# ----------------------------------------------------------------------
# End-to-end
# ----------------------------------------------------------------------


def open_spec(**overrides) -> ExperimentSpec:
    workload = dict(
        open_loop=True, n_users=1_000_000, offered_load=120.0, pool_size=8,
        max_pending=3, open_duration_ms=1_200.0, n_rows=8,
    )
    workload.update(overrides.pop("workload", {}))
    spec = dict(
        name="openloop-test",
        cluster=ClusterConfig(
            placement=PlacementConfig.ranged(4, key_universe=8),
        ),
        workload=WorkloadConfig(**workload),
        protocol="paxos-cp",
        check_invariants=False,
        retain_outcomes=False,
    )
    spec.update(overrides)
    return ExperimentSpec(**spec)


def test_open_loop_accounting_balances():
    result = run_once(open_spec(), seed=3)
    stats = result.metrics.open_loop
    assert stats is not None
    assert stats.offered == stats.admitted + stats.dropped
    assert stats.completed == stats.admitted
    assert result.metrics.n_transactions == stats.completed
    assert stats.peak_pending <= 3
    assert result.outcomes == []
    assert result.metrics.commits > 0
    assert result.metrics.commit_latency.p99_ms >= result.metrics.commit_latency.p50_ms


def test_open_loop_overload_drops():
    result = run_once(
        open_spec(workload={"offered_load": 2_000.0}), seed=3
    )
    stats = result.metrics.open_loop
    assert stats.dropped > 0, "10x overload must trip the admission control"
    assert stats.peak_pending == 3


def test_retained_mode_runs_invariants_and_matches_streaming():
    streaming = open_spec()
    retained = replace(streaming, retain_outcomes=True, check_invariants=True)
    a = run_once(streaming, seed=5)
    b = run_once(retained, seed=5)
    assert len(b.outcomes) == b.metrics.n_transactions > 0
    # Metrics flow through the same aggregate path in both retention modes.
    assert repr(a.metrics) == repr(b.metrics)
    # Retained outcomes are re-anchored at the arrival: latency == response.
    assert all(o.latency_ms >= 0 for o in b.outcomes)


def test_serial_and_parallel_digests_match():
    specs = [open_spec(), open_spec(workload={"arrival": "flash"})]
    serial = run_cells(specs, trials=2, base_seed=11, jobs=1)
    parallel = run_cells(specs, trials=2, base_seed=11, jobs=2)
    assert metrics_digest(serial) == metrics_digest(parallel)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_each_arrival_kind_runs_end_to_end(kind):
    result = run_once(
        open_spec(workload={
            "arrival": kind, "flash_at_ms": 300.0, "flash_duration_ms": 300.0,
            "diurnal_period_ms": 1_000.0,
        }),
        seed=2,
    )
    stats = result.metrics.open_loop
    assert stats.offered > 0 and stats.completed == stats.admitted


def test_hot_shift_changes_traffic():
    static = run_once(open_spec(), seed=9)
    shifted = run_once(
        open_spec(workload={"hot_shift_period_ms": 300.0}), seed=9
    )
    # Same arrival stream, different user->row mapping after the first
    # epoch boundary: the per-group traffic must differ.
    assert repr(static.metrics) != repr(shifted.metrics)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_open_loop_rejects_cross_group_fractions():
    with pytest.raises(ValueError, match="cross_group_fraction"):
        WorkloadConfig(open_loop=True, cross_group_fraction=0.1)
    with pytest.raises(ValueError, match="queue_fraction"):
        WorkloadConfig(open_loop=True, queue_fraction=0.1)


def test_open_loop_rejects_sharded_clusters():
    # Caught when the spec is built — no cluster is ever constructed.
    with pytest.raises(ValueError, match="single-lane"):
        open_spec(cluster=ClusterConfig(
            placement=PlacementConfig.ranged(4, key_universe=8),
            shards=2, engine="sharded",
        ))


def test_streaming_rejects_invariant_checking():
    with pytest.raises(ValueError, match="retain_outcomes"):
        replace(open_spec(), check_invariants=True)


def test_open_loop_rejects_per_datacenter():
    spec = replace(open_spec(), per_datacenter_instances=True)
    with pytest.raises(ValueError, match="per_datacenter"):
        run_once(spec, seed=0)
