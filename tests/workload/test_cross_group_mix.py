"""The --cross-group-fraction transaction mix and its abort accounting."""

from __future__ import annotations

import random

import pytest

from repro.config import PlacementConfig, WorkloadConfig
from repro.harness.metrics import RunMetrics
from repro.harness.report import _abort_histogram, _cross_group_cell
from repro.model import AbortReason, Placement, Transaction, TransactionOutcome, TransactionStatus
from repro.workload.ycsb import YcsbWorkload


def make_workload(fraction: float, span: int = 2, n_groups: int = 4,
                  seed: int = 0) -> YcsbWorkload:
    placement = Placement(PlacementConfig(
        n_groups=n_groups, assignment="range", key_universe=n_groups,
    ))
    config = WorkloadConfig(
        n_rows=n_groups, n_attributes=10, ops_per_transaction=6,
        cross_group_fraction=fraction, cross_group_span=span,
    )
    return YcsbWorkload(config, random.Random(seed), placement=placement)


class TestCrossGroupSpecs:
    def test_zero_fraction_never_spans_groups(self):
        workload = make_workload(0.0)
        for _draw in range(50):
            groups, _ops = workload.next_transaction_spec()
            assert len(groups) == 1

    def test_full_fraction_always_spans_the_configured_span(self):
        workload = make_workload(1.0, span=3)
        placement = workload.placement
        for _draw in range(25):
            groups, ops = workload.next_transaction_spec()
            assert len(groups) == 3
            assert len(set(groups)) == 3
            # Every named group is genuinely touched by some operation.
            touched = {placement.group_of(op.row) for op in ops}
            assert touched == set(groups)

    def test_operations_stay_inside_the_named_groups(self):
        workload = make_workload(1.0)
        placement = workload.placement
        for _draw in range(25):
            groups, ops = workload.next_transaction_spec()
            for op in ops:
                assert placement.group_of(op.row) in groups

    def test_span_is_clamped_to_the_group_count(self):
        workload = make_workload(1.0, span=8, n_groups=3)
        groups, _ops = workload.next_transaction_spec()
        assert len(groups) == 3

    def test_config_validates_the_mix_knobs(self):
        with pytest.raises(ValueError):
            WorkloadConfig(cross_group_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(cross_group_span=1)


class TestAbortAccounting:
    def outcome(self, reason: AbortReason) -> TransactionOutcome:
        txn = Transaction(
            tid="t1", group="group-0", read_set=frozenset(),
            writes=((("row0", "a0"), "v"),), read_position=0,
        )
        return TransactionOutcome(
            transaction=txn, status=TransactionStatus.ABORTED,
            abort_reason=reason,
        )

    def test_cross_group_aborts_are_a_distinct_reason(self):
        metrics = RunMetrics.from_outcomes([
            self.outcome(AbortReason.CROSS_GROUP),
            self.outcome(AbortReason.CROSS_GROUP),
            self.outcome(AbortReason.LOST_POSITION),
        ])
        assert metrics.aborts_by_reason["cross_group"] == 2
        assert metrics.aborts_by_reason["lost_position"] == 1

    def test_report_surfaces_every_abort_reason(self):
        metrics = RunMetrics.from_outcomes([
            self.outcome(AbortReason.CROSS_GROUP),
            self.outcome(AbortReason.PREPARE_FAILED),
        ])
        rendered = _abort_histogram(metrics)
        assert "cross_group:1" in rendered
        assert "prepare_failed:1" in rendered

    def test_report_surfaces_the_cross_group_slice(self):
        from repro.model import CROSS_GROUP

        cross = Transaction(
            tid="g1", group=CROSS_GROUP, read_set=frozenset(),
            writes=((("group-0/row0", "a0"), "v"),), read_position=-1,
            groups=("group-0", "group-1"),
        )
        metrics = RunMetrics.from_outcomes([
            TransactionOutcome(
                transaction=cross, status=TransactionStatus.COMMITTED,
                begin_time=0.0, end_time=120.0,
            ),
            self.outcome(AbortReason.LOST_POSITION),
        ])
        assert metrics.cross_group_transactions == 1
        assert metrics.cross_group_commits == 1
        assert metrics.mean_cross_commit_latency_ms == 120.0
        assert _cross_group_cell(metrics) == "1/1"
