"""Multi-group transaction generation in :class:`YcsbWorkload`."""

from __future__ import annotations

import random

import pytest

from repro.config import PlacementConfig, WorkloadConfig
from repro.model import Placement
from repro.workload.ycsb import YcsbWorkload


def sharded_workload(n_groups: int = 4, n_rows: int | None = None, **overrides):
    n_rows = n_rows if n_rows is not None else n_groups
    placement = Placement(PlacementConfig(
        n_groups=n_groups, assignment="range", key_universe=n_rows,
    ))
    config = WorkloadConfig(n_rows=n_rows, n_attributes=8, **overrides)
    return YcsbWorkload(config, random.Random(7), placement=placement)


class TestMultiGroupGeneration:
    def test_groups_property_lists_placement_groups(self):
        workload = sharded_workload(4)
        assert workload.groups == ("group-0", "group-1", "group-2", "group-3")

    def test_single_group_mode_unchanged(self):
        config = WorkloadConfig(n_attributes=8)
        workload = YcsbWorkload(config, random.Random(7))
        assert workload.groups == (config.group,)
        group, ops = workload.next_group_transaction()
        assert group == config.group
        assert len(ops) == config.ops_per_transaction

    def test_initial_images_partition_the_rows(self):
        workload = sharded_workload(2, n_rows=4)
        images = workload.initial_images()
        assert set(images) == {"group-0", "group-1"}
        all_rows = {row for rows in images.values() for row in rows}
        assert all_rows == {f"row{k}" for k in range(4)}
        # Same partition the cluster's placement would compute.
        for group, rows in images.items():
            assert all(
                workload.placement.group_of(row) == group for row in rows
            )

    def test_transactions_confined_to_their_group_rows(self):
        workload = sharded_workload(4, n_rows=8)
        for _ in range(50):
            group, ops = workload.next_group_transaction()
            assert group in workload.groups
            for op in ops:
                assert workload.placement.group_of(op.row) == group

    def test_empty_group_is_rejected(self):
        # 2 rows hashed over 8 groups: most groups own no rows.
        placement = Placement(PlacementConfig(n_groups=8, assignment="hash"))
        config = WorkloadConfig(n_rows=2, n_attributes=8)
        with pytest.raises(ValueError, match="no rows"):
            YcsbWorkload(config, random.Random(7), placement=placement)

    def test_uniform_group_choice_hits_every_group(self):
        workload = sharded_workload(4)
        seen = {workload.next_group_transaction()[0] for _ in range(200)}
        assert seen == set(workload.groups)

    def test_zipfian_group_choice_prefers_low_indices(self):
        workload = sharded_workload(
            4, group_distribution="zipfian", group_zipfian_theta=0.99,
        )
        counts: dict[str, int] = {}
        for _ in range(400):
            group, _ops = workload.next_group_transaction()
            counts[group] = counts.get(group, 0) + 1
        assert counts["group-0"] > counts.get("group-3", 0)
