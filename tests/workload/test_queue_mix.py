"""The --queue-fraction workload mix: plan generation and driver wiring."""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig, WorkloadConfig
from repro.model import Placement
from repro.workload.driver import WorkloadDriver
from repro.workload.ycsb import YcsbWorkload


def placement(n_groups: int = 4) -> Placement:
    return Placement(PlacementConfig(
        n_groups=n_groups, assignment="range", key_universe=n_groups,
    ))


def generator(seed: int = 7, **overrides) -> YcsbWorkload:
    config = WorkloadConfig(
        n_rows=4, n_attributes=10, ops_per_transaction=6, **overrides
    )
    return YcsbWorkload(config, random.Random(seed), placement=placement())


class TestQueuePlans:
    def test_queue_plans_stay_single_group_with_remote_writes(self):
        workload = generator(queue_fraction=1.0)
        for _draw in range(25):
            plan = workload.next_transaction_plan()
            assert len(plan.groups) == 1
            home = plan.home_group
            for op in plan.ops:
                assert workload.placement.group_of(op.row) == home
            assert plan.queue_ops, "a span-2 queue plan must defer something"
            for group, op in plan.queue_ops:
                assert group != home
                assert workload.placement.group_of(op.row) == group
                assert op.kind == "write", "remote reads cannot be deferred"

    def test_zero_queue_fraction_preserves_the_rng_stream(self):
        # The queue coin is only tossed when the knob is on: fraction-0
        # plans replay the pre-queue generator draw for draw.
        with_knob = generator(queue_fraction=0.0, cross_group_fraction=0.5)
        legacy = generator(queue_fraction=0.0, cross_group_fraction=0.5)
        stream = [with_knob.next_transaction_plan() for _draw in range(40)]
        spec_stream = [legacy.next_transaction_spec() for _draw in range(40)]
        assert [(p.groups, list(p.ops)) for p in stream] == spec_stream
        assert all(not p.queue_ops for p in stream)

    def test_mixed_fractions_produce_all_three_shapes(self):
        workload = generator(cross_group_fraction=0.3, queue_fraction=0.4)
        shapes = {"2pc": 0, "queue": 0, "single": 0}
        for _draw in range(120):
            plan = workload.next_transaction_plan()
            if len(plan.groups) > 1:
                shapes["2pc"] += 1
                assert not plan.queue_ops, "2PC plans never defer writes"
            elif plan.queue_ops:
                shapes["queue"] += 1
            else:
                shapes["single"] += 1
        assert all(count > 0 for count in shapes.values()), shapes

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="queue_fraction"):
            WorkloadConfig(queue_fraction=1.5)


class TestDriverWiring:
    def cluster(self, n_groups: int = 4) -> Cluster:
        return Cluster(ClusterConfig(
            store=StoreConfig.instant(), jitter=0.0,
            placement=PlacementConfig(
                n_groups=n_groups, assignment="range", key_universe=n_groups,
            ),
        ))

    def test_queue_fraction_requires_multi_group(self):
        cluster = Cluster(ClusterConfig(store=StoreConfig.instant()))
        workload = WorkloadConfig(queue_fraction=0.5)
        with pytest.raises(ValueError, match="queue_fraction"):
            WorkloadDriver(cluster, workload, "paxos")

    def test_queue_fraction_rejects_the_leased_leader(self):
        workload = WorkloadConfig(n_rows=4, n_attributes=10, queue_fraction=0.5)
        with pytest.raises(ValueError, match="leased"):
            WorkloadDriver(self.cluster(), workload, "leased-leader")

    def test_queue_mix_runs_and_passes_all_invariants(self):
        cluster = self.cluster()
        workload = WorkloadConfig(
            n_transactions=24, ops_per_transaction=4, n_attributes=8,
            n_rows=4, n_threads=3, target_rate_per_thread=20.0,
            stagger_ms=5.0, queue_fraction=0.5,
        )
        driver = WorkloadDriver(cluster, workload, "paxos-cp")
        driver.install_data()
        driver.start()
        cluster.start_queue_pumps(poll_ms=10)
        cluster.run()
        outcomes = driver.result.outcomes
        assert len(outcomes) == 24
        sends = [o for o in outcomes if o.transaction.sends]
        assert sends, "the mix produced no queue transactions"
        # Exactly-once delivery, sender order, §3 per group, global 1SR.
        cluster.check_invariants_all(outcomes)
        stats = cluster.queue_stats()
        committed_sends = sum(
            len(o.transaction.sends) for o in sends if o.committed
        )
        assert stats.sends == committed_sends
        assert stats.applied_online + stats.drained_offline == stats.sends
