"""Tests for the YCSB-style generator."""

import random
from collections import Counter

import pytest

from repro.config import WorkloadConfig
from repro.workload.ycsb import Operation, YcsbWorkload, ZipfianGenerator


class TestZipfian:
    def test_rank_zero_most_popular(self):
        generator = ZipfianGenerator(50, theta=0.99)
        rng = random.Random(0)
        counts = Counter(generator.next(rng) for _ in range(5000))
        assert counts[0] == max(counts.values())
        assert counts[0] > counts.get(25, 0)

    def test_all_draws_in_range(self):
        generator = ZipfianGenerator(10)
        rng = random.Random(1)
        assert all(0 <= generator.next(rng) < 10 for _ in range(1000))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestWorkloadGeneration:
    def make(self, **overrides):
        config = WorkloadConfig(**overrides)
        return YcsbWorkload(config, random.Random(7)), config

    def test_initial_rows_cover_all_attributes(self):
        workload, config = self.make(n_attributes=5, n_rows=2)
        rows = workload.initial_rows()
        assert set(rows) == {"row0", "row1"}
        for attributes in rows.values():
            assert len(attributes) == 5

    def test_transaction_length(self):
        workload, config = self.make(ops_per_transaction=10)
        ops = workload.next_transaction()
        assert len(ops) == 10
        assert all(isinstance(op, Operation) for op in ops)

    def test_read_fraction_respected(self):
        workload, _ = self.make(read_fraction=0.5)
        kinds = Counter(
            op.kind for _ in range(200) for op in workload.next_transaction()
        )
        total = kinds["read"] + kinds["write"]
        assert 0.45 < kinds["read"] / total < 0.55

    def test_read_only_fraction_at_extremes(self):
        all_reads, _ = self.make(read_fraction=1.0)
        assert all(op.kind == "read" for op in all_reads.next_transaction())
        all_writes, _ = self.make(read_fraction=0.0)
        assert all(op.kind == "write" for op in all_writes.next_transaction())

    def test_attributes_within_configured_range(self):
        workload, config = self.make(n_attributes=20)
        for _ in range(50):
            for op in workload.next_transaction():
                index = int(op.attribute[1:])
                assert 0 <= index < 20

    def test_uniform_distribution_spreads(self):
        workload, _ = self.make(n_attributes=10)
        counts = Counter(
            op.attribute for _ in range(300) for op in workload.next_transaction()
        )
        assert len(counts) == 10
        assert max(counts.values()) < 3 * min(counts.values())

    def test_zipfian_distribution_skews(self):
        workload, _ = self.make(n_attributes=10, distribution="zipfian")
        counts = Counter(
            op.attribute for _ in range(300) for op in workload.next_transaction()
        )
        assert counts.most_common(1)[0][0] == "a0"

    def test_deterministic_for_seeded_rng(self):
        first = YcsbWorkload(WorkloadConfig(), random.Random(3))
        second = YcsbWorkload(WorkloadConfig(), random.Random(3))
        assert first.next_transaction() == second.next_transaction()


class TestConfigValidation:
    def test_bad_read_fraction(self):
        with pytest.raises(ValueError):
            WorkloadConfig(read_fraction=1.5)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            WorkloadConfig(ops_per_transaction=0)
        with pytest.raises(ValueError):
            WorkloadConfig(n_attributes=0)
        with pytest.raises(ValueError):
            WorkloadConfig(n_threads=0)
        with pytest.raises(ValueError):
            WorkloadConfig(target_rate_per_thread=0)

    def test_interarrival(self):
        assert WorkloadConfig(target_rate_per_thread=2.0).mean_interarrival_ms == 500.0
