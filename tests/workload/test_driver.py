"""Tests for the workload driver."""

from repro.config import WorkloadConfig
from repro.model import AbortReason
from repro.workload.driver import WorkloadDriver
from tests.conftest import make_cluster

GROUP = "group-0"


def small_workload(**overrides):
    defaults = dict(
        n_transactions=12, ops_per_transaction=4, n_attributes=20,
        n_threads=3, target_rate_per_thread=10.0, stagger_ms=10.0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestDriver:
    def test_runs_exact_transaction_budget(self):
        cluster = make_cluster()
        driver = WorkloadDriver(cluster, small_workload(), "paxos-cp")
        driver.install_data()
        driver.start()
        cluster.run()
        assert driver.done
        assert len(driver.result.outcomes) == 12
        assert driver.result.commits + driver.result.aborts == 12

    def test_budget_split_across_threads(self):
        cluster = make_cluster()
        driver = WorkloadDriver(cluster, small_workload(n_transactions=7,
                                                        n_threads=3), "paxos")
        driver.install_data()
        driver.start()
        cluster.run()
        assert len(driver.result.outcomes) == 7
        clients = {o.transaction.origin for o in driver.result.outcomes
                   if o.transaction.origin}
        assert len(clients) == 3

    def test_staggered_starts(self):
        cluster = make_cluster()
        driver = WorkloadDriver(cluster, small_workload(stagger_ms=100.0),
                                "paxos")
        driver.install_data()
        driver.start()
        cluster.run()
        by_client = {}
        for outcome in driver.result.outcomes:
            by_client.setdefault(outcome.transaction.origin, []).append(
                outcome.begin_time
            )
        first_starts = sorted(min(times) for times in by_client.values())
        assert first_starts[1] - first_starts[0] >= 90.0

    def test_rate_cap_spaces_transactions(self):
        cluster = make_cluster()
        driver = WorkloadDriver(
            cluster,
            small_workload(n_transactions=4, n_threads=1,
                           target_rate_per_thread=1.0),
            "paxos",
        )
        driver.install_data()
        driver.start()
        cluster.run()
        starts = sorted(o.begin_time for o in driver.result.outcomes)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap >= 700.0 for gap in gaps)  # ~1/s with 20% jitter

    def test_unavailable_services_recorded_not_raised(self):
        cluster = make_cluster()
        for dc in cluster.topology.names:
            cluster.services[dc].node.down = True
        driver = WorkloadDriver(
            cluster, small_workload(n_transactions=2, n_threads=1), "paxos"
        )
        driver.install_data()
        driver.start()
        cluster.run()
        assert len(driver.result.outcomes) == 2
        assert all(
            o.abort_reason is AbortReason.SERVICE_UNAVAILABLE
            for o in driver.result.outcomes
        )

    def test_per_datacenter_instances(self):
        cluster = make_cluster("VOC")
        drivers = WorkloadDriver.per_datacenter(
            cluster, small_workload(n_transactions=6), "paxos-cp"
        )
        drivers[0].install_data()
        for driver in drivers:
            driver.start()
        cluster.run()
        assert [d.result.datacenter for d in drivers] == ["V1", "O", "C"]
        assert all(len(d.result.outcomes) == 6 for d in drivers)

    def test_write_values_globally_unique(self):
        cluster = make_cluster()
        driver = WorkloadDriver(cluster, small_workload(), "paxos-cp")
        driver.install_data()
        driver.start()
        cluster.run()
        values = [
            value
            for outcome in driver.result.outcomes
            for _item, value in outcome.transaction.writes
        ]
        assert len(values) == len(set(values))

    def test_deterministic_given_seed(self):
        def run(seed):
            cluster = make_cluster(seed=seed)
            driver = WorkloadDriver(cluster, small_workload(), "paxos-cp")
            driver.install_data()
            driver.start()
            cluster.run()
            return [
                (o.transaction.tid, o.status.value, o.end_time)
                for o in driver.result.outcomes
            ]

        assert run(5) == run(5)
        assert run(5) != run(6)
