"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_protocol_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "2pc"])


class TestRunCommand:
    def test_prints_metrics_table(self, capsys):
        code = main([
            "run", "--transactions", "10", "--threads", "2",
            "--rate", "10", "--attributes", "20", "--ops", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "VVV/paxos-cp" in out
        assert "commits" in out

    def test_per_dc_prints_breakdown(self, capsys):
        code = main([
            "run", "--transactions", "6", "--threads", "1", "--rate", "20",
            "--ops", "2", "--per-dc", "--cluster", "VOC",
            "--protocol", "paxos",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "per datacenter" in out
        assert "V1" in out and "O" in out and "C" in out

    def test_groups_flag_shards_the_workload(self, capsys):
        code = main([
            "run", "--transactions", "12", "--threads", "2", "--rate", "10",
            "--ops", "3", "--groups", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "VVV/paxos-cp/4g" in out

    def test_per_dc_combined_with_groups_fans_out(self, capsys):
        code = main([
            "run", "--groups", "2", "--per-dc", "--transactions", "6",
            "--threads", "1", "--rate", "20", "--ops", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "per datacenter" in out
        # The sharded placement must not turn routine operations into
        # cross-group failures recorded as unavailable aborts.
        assert "service_unavailable" not in out

    def test_groups_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["run", "--groups", "0", "--transactions", "2"])
        with pytest.raises(SystemExit):
            main(["run", "--groups", "4", "--rows", "2", "--transactions", "2"])

    def test_flags_reach_the_protocol(self, capsys):
        code = main([
            "run", "--transactions", "8", "--threads", "2", "--rate", "10",
            "--ops", "4", "--no-fastpath", "--max-promotions", "0",
            "--protocol", "paxos-cp",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "r1:" not in out  # promotions capped at 0 → no round-1 commits


class TestIsolationFlag:
    def test_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--isolation", "read-committed"])

    def test_si_run_names_cell_and_reports_anomalies(self, capsys):
        code = main([
            "run", "--transactions", "60", "--threads", "8", "--rate", "10",
            "--ops", "4", "--attributes", "4", "--protocol", "paxos",
            "--isolation", "si",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "VVV/paxos/si" in out
        assert "write_skew" in out

    def test_si_rejects_leased_leader(self):
        with pytest.raises(SystemExit, match="leased"):
            main(["run", "--isolation", "si", "--protocol", "leased-leader",
                  "--transactions", "2"])

    def test_si_rejects_queue_and_cross_group_traffic(self):
        with pytest.raises(SystemExit, match="single-group"):
            main(["run", "--isolation", "ssi", "--groups", "2",
                  "--cross-group-fraction", "0.2", "--transactions", "2"])
        with pytest.raises(SystemExit, match="single-group"):
            main(["run", "--isolation", "si", "--groups", "2",
                  "--queue-fraction", "0.2", "--transactions", "2"])

    def test_check_classifies_under_si(self, capsys):
        code = main([
            "check", "--transactions", "60", "--threads", "8", "--rate", "10",
            "--ops", "4", "--attributes", "4", "--protocol", "paxos",
            "--isolation", "si",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "first-committer-wins: OK" in out
        assert "classified anomalies (expected under si):" in out

    def test_check_ssi_keeps_full_oracle(self, capsys):
        code = main([
            "check", "--transactions", "20", "--threads", "4", "--rate", "10",
            "--ops", "4", "--attributes", "4", "--protocol", "paxos",
            "--isolation", "ssi",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MVSG 1SR: OK" in out


class TestOpenLoopGuards:
    def test_open_loop_shards_guard_quotes_shared_message(self, capsys):
        with pytest.raises(SystemExit, match="single-lane"):
            main(["run", "--open-loop", "--shards", "2", "--groups", "2",
                  "--transactions", "2"])


class TestCheckCommand:
    def test_clean_run_reports_ok(self, capsys):
        code = main([
            "check", "--transactions", "10", "--threads", "2",
            "--rate", "10", "--ops", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MVSG 1SR: OK" in out

    def test_check_survives_faults(self, capsys):
        code = main([
            "check", "--transactions", "10", "--threads", "2",
            "--rate", "10", "--ops", "4",
            "--loss", "0.1", "--duplicate", "0.2",
        ])
        assert code == 0


class TestFigureCommand:
    def test_scaled_down_figure_runs(self, capsys):
        code = main(["figure", "figure8", "--transactions", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== Figure 8 ==" in out
        assert "paper:" in out
