"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_protocol_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "2pc"])


class TestRunCommand:
    def test_prints_metrics_table(self, capsys):
        code = main([
            "run", "--transactions", "10", "--threads", "2",
            "--rate", "10", "--attributes", "20", "--ops", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "VVV/paxos-cp" in out
        assert "commits" in out

    def test_per_dc_prints_breakdown(self, capsys):
        code = main([
            "run", "--transactions", "6", "--threads", "1", "--rate", "20",
            "--ops", "2", "--per-dc", "--cluster", "VOC",
            "--protocol", "paxos",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "per datacenter" in out
        assert "V1" in out and "O" in out and "C" in out

    def test_groups_flag_shards_the_workload(self, capsys):
        code = main([
            "run", "--transactions", "12", "--threads", "2", "--rate", "10",
            "--ops", "3", "--groups", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "VVV/paxos-cp/4g" in out

    def test_per_dc_combined_with_groups_fans_out(self, capsys):
        code = main([
            "run", "--groups", "2", "--per-dc", "--transactions", "6",
            "--threads", "1", "--rate", "20", "--ops", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "per datacenter" in out
        # The sharded placement must not turn routine operations into
        # cross-group failures recorded as unavailable aborts.
        assert "service_unavailable" not in out

    def test_groups_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["run", "--groups", "0", "--transactions", "2"])
        with pytest.raises(SystemExit):
            main(["run", "--groups", "4", "--rows", "2", "--transactions", "2"])

    def test_flags_reach_the_protocol(self, capsys):
        code = main([
            "run", "--transactions", "8", "--threads", "2", "--rate", "10",
            "--ops", "4", "--no-fastpath", "--max-promotions", "0",
            "--protocol", "paxos-cp",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "r1:" not in out  # promotions capped at 0 → no round-1 commits


class TestCheckCommand:
    def test_clean_run_reports_ok(self, capsys):
        code = main([
            "check", "--transactions", "10", "--threads", "2",
            "--rate", "10", "--ops", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MVSG 1SR: OK" in out

    def test_check_survives_faults(self, capsys):
        code = main([
            "check", "--transactions", "10", "--threads", "2",
            "--rate", "10", "--ops", "4",
            "--loss", "0.1", "--duplicate", "0.2",
        ])
        assert code == 0


class TestFigureCommand:
    def test_scaled_down_figure_runs(self, capsys):
        code = main(["figure", "figure8", "--transactions", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== Figure 8 ==" in out
        assert "paper:" in out
