"""Tests for the client retry loop: backoff, deadlines, typed outcomes."""

import pytest

from repro.config import (
    ClusterConfig,
    FaultScheduleConfig,
    OutageWindow,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.core.retry import backoff_bound_ms, backoff_delay_ms
from repro.errors import DeadlineExceeded
from repro.failures.injector import FailureInjector
from repro.harness.experiment import ExperimentSpec, run_once
from repro.harness.parallel import metrics_digest
from repro.sim.env import Environment
from tests.conftest import make_cluster

GROUP = "g"


class TestBackoff:
    def test_flat_at_default_cap(self):
        """Default cap == base: every attempt draws uniform(0, 40) — the
        historic flat backoff, bit for bit."""
        config = ProtocolConfig()
        assert all(backoff_bound_ms(config, k) == 40.0 for k in range(6))

    def test_exponential_growth_when_cap_raised(self):
        config = ProtocolConfig(retry_backoff_cap_ms=320.0)
        bounds = [backoff_bound_ms(config, k) for k in range(6)]
        assert bounds == [40.0, 80.0, 160.0, 320.0, 320.0, 320.0]

    def test_draws_deterministic_per_seed(self):
        config = ProtocolConfig(retry_backoff_cap_ms=640.0)

        def sequence(seed: int) -> list[float]:
            rng = Environment(seed=seed).rng.stream("client.retry.c0")
            return [backoff_delay_ms(rng, config, k) for k in range(8)]

        assert sequence(11) == sequence(11)
        assert sequence(11) != sequence(12)

    def test_draws_respect_bound(self):
        config = ProtocolConfig(retry_backoff_cap_ms=160.0)
        rng = Environment(seed=0).rng.stream("client.retry.c0")
        for attempt in range(20):
            delay = backoff_delay_ms(rng, config, attempt % 5)
            assert 0.0 <= delay <= backoff_bound_ms(config, attempt % 5)


class TestDecisiveQuorum:
    def test_in_fault_commit_round_does_not_stall_for_timeout(self):
        """A phase whose outcome is already settled by the replies in hand
        must not wait out ``timeout_ms`` for a reply a dead datacenter will
        never send.  Two back-to-back transactions race the APPLY broadcast:
        the second competes for the already-decided position and its prepare
        replies (all negative, reporting the chosen value) are decisive."""
        cluster = make_cluster(timeout_ms=2000.0)
        injector = FailureInjector(cluster)
        injector.outage("V3", start_ms=100.0, duration_ms=4000.0)
        cluster.preload(GROUP, {"row0": {"a": "x"}})
        client = cluster.add_client("V1", protocol="paxos-cp")
        durations = []

        def proc():
            yield cluster.env.timeout(150.0)
            for i in range(4):
                begin = cluster.env.now
                handle = yield from client.begin(GROUP)
                yield from client.read(handle, "row0", "a")
                client.write(handle, "row0", "a", str(i))
                yield from client.commit(handle)
                durations.append(cluster.env.now - begin)

        cluster.env.process(proc())
        cluster.run()
        assert len(durations) == 4
        # Before the decisive rules every other commit waited the full 2 s
        # loss-detection timeout; now all rounds settle on the live majority.
        assert max(durations) < 100.0, durations


class TestDeadline:
    def make_dark_cluster(self, **overrides):
        """A cluster that is completely dark: every sweep must fail.

        All three datacenters go down (a minority outage would leave
        ``begin``/``read`` served by the client's local replica and never
        exercise the retry loop — only *commit* needs a majority).
        """
        cluster = make_cluster(**overrides)
        injector = FailureInjector(cluster)
        for dc in cluster.topology.names:
            injector.outage(dc, start_ms=0.0, duration_ms=10_000_000.0)
        return cluster

    def test_deadline_exhaustion_raises_typed_error(self):
        """The retry loop terminates on the budget — no unbounded gather."""
        cluster = self.make_dark_cluster(
            timeout_ms=50.0, retry_attempts=10, deadline_ms=300.0,
        )
        cluster.preload(GROUP, {"row0": {"a": "init"}})
        client = cluster.add_client("V1", protocol="paxos")

        def proc():
            yield from client.begin(GROUP)

        cluster.env.process(proc())
        with pytest.raises(DeadlineExceeded):
            cluster.run()
        assert cluster.env.now < 1_000.0  # budget held; no retry runaway

    def spec(self, **protocol_overrides) -> ExperimentSpec:
        return ExperimentSpec(
            name="dark",
            cluster=ClusterConfig(
                cluster_code="VVV",
                protocol=ProtocolConfig(
                    timeout_ms=50.0, max_commit_attempts=2,
                    **protocol_overrides,
                ),
                faults=FaultScheduleConfig(outages=(
                    OutageWindow("V1", 0.0, 10_000_000.0),
                    OutageWindow("V2", 0.0, 10_000_000.0),
                    OutageWindow("V3", 0.0, 10_000_000.0),
                )),
            ),
            workload=WorkloadConfig(
                n_transactions=4, ops_per_transaction=2, n_attributes=4,
                n_threads=2, target_rate_per_thread=20.0,
            ),
            protocol="paxos",
        )

    def test_driver_maps_deadline_to_timeout_abort(self):
        result = run_once(self.spec(retry_attempts=10, deadline_ms=300.0))
        metrics = result.metrics
        assert metrics.commits == 0
        assert set(metrics.aborts_by_reason) == {"timeout"}
        assert metrics.aborts_by_reason["timeout"] == 4

    def test_exhausted_retries_without_deadline_are_unavailable(self):
        result = run_once(self.spec(retry_attempts=1))
        metrics = result.metrics
        assert metrics.commits == 0
        assert set(metrics.aborts_by_reason) == {"service_unavailable"}


class TestFaultFreeNeutrality:
    def test_retry_policy_does_not_perturb_fault_free_runs(self):
        """Retries only draw RNG on actual failures, so enabling the policy
        leaves a fault-free run's metrics digest untouched."""

        def digest(**protocol_overrides) -> str:
            spec = ExperimentSpec(
                name="cell",
                cluster=ClusterConfig(
                    cluster_code="VVV",
                    protocol=ProtocolConfig(**protocol_overrides),
                ),
                workload=WorkloadConfig(
                    n_transactions=12, ops_per_transaction=3, n_attributes=8,
                    n_threads=3, target_rate_per_thread=20.0,
                ),
                protocol="paxos-cp",
            )
            return metrics_digest([run_once(spec, seed=5)])

        assert digest(retry_attempts=0) == digest(
            retry_attempts=5, retry_backoff_cap_ms=640.0, deadline_ms=5_000.0,
        )
