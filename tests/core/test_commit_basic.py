"""Tests for the basic Paxos commit protocol (§4.1, Algorithm 2).

The defining behaviour: one transaction per position, losers abort even
without data conflicts — concurrency *prevention*.
"""

from repro.core.commit_basic import find_winning_val
from repro.model import AbortReason, TransactionStatus
from repro.paxos.ballot import NULL_BALLOT, Ballot
from repro.paxos.messages import PrepareReply
from repro.paxos.proposer import PhaseOutcome
from repro.wal.entry import LogEntry
from tests.conftest import make_cluster
from tests.helpers import txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {f"a{i}": "init" for i in range(10)}})
    return cluster


def reply(success=True, last_ballot=NULL_BALLOT, last_value=None, promised=None):
    return PrepareReply(
        success=success,
        promised=promised or Ballot(1, "x"),
        last_ballot=last_ballot,
        last_value=last_value,
    )


class TestFindWinningVal:
    def test_all_null_votes_returns_own(self):
        own = LogEntry.single(txn("me", writes={"a": 1}))
        outcome = PhaseOutcome(replies=[("s1", reply()), ("s2", reply())])
        assert find_winning_val(outcome, own) is own

    def test_adopts_highest_ballot_vote(self):
        own = LogEntry.single(txn("me", writes={"a": 1}))
        low = LogEntry.single(txn("low", writes={"a": 2}))
        high = LogEntry.single(txn("high", writes={"a": 3}))
        outcome = PhaseOutcome(replies=[
            ("s1", reply(last_ballot=Ballot(1, "a"), last_value=low)),
            ("s2", reply(last_ballot=Ballot(3, "b"), last_value=high)),
        ])
        assert find_winning_val(outcome, own) is high

    def test_ignores_votes_in_refusals(self):
        """Algorithm 2's responseSet holds LAST VOTE responses (successes)."""
        own = LogEntry.single(txn("me", writes={"a": 1}))
        other = LogEntry.single(txn("other", writes={"a": 2}))
        outcome = PhaseOutcome(replies=[
            ("s1", reply()),
            ("s2", reply(success=False, last_ballot=Ballot(5, "z"),
                         last_value=other)),
        ])
        assert find_winning_val(outcome, own) is own


class TestSingleClient:
    def test_uncontended_commit_succeeds(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="paxos")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a0", "v")
            return (yield from client.commit(handle))

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value.committed
        assert process.value.promotions == 0

    def test_sequential_commits_fill_consecutive_positions(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="paxos")
        positions = []

        def proc():
            for index in range(3):
                handle = yield from client.begin(GROUP)
                client.write(handle, "row0", "a0", f"v{index}")
                outcome = yield from client.commit(handle)
                positions.append(outcome.commit_position)
                # Let the APPLY land locally before the next begin.
                yield cluster.env.timeout(50.0)

        cluster.env.process(proc())
        cluster.run()
        assert positions == [1, 2, 3]

    def test_commit_replicated_to_all_datacenters(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="paxos")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a0", "v")
            return (yield from client.commit(handle))

        process = cluster.env.process(proc())
        cluster.run()
        tid = process.value.transaction.tid
        for dc in cluster.topology.names:
            entry = cluster.services[dc].replica(GROUP).chosen_entry(1)
            assert entry is not None and entry.contains(tid)


class TestConcurrencyPrevention:
    def run_pair(self, disjoint: bool, **kwargs):
        """Two clients with overlapping windows; returns their outcomes."""
        cluster = preloaded(**kwargs)
        first = cluster.add_client("V1", protocol="paxos")
        second = cluster.add_client("V2", protocol="paxos")
        items_second = ("a5" if disjoint else "a0", "a6" if disjoint else "a1")

        def proc(client, items, start_delay):
            def run():
                yield cluster.env.timeout(start_delay)
                handle = yield from client.begin(GROUP)
                for item in items:
                    yield from client.read(handle, "row0", item)
                for item in items:
                    client.write(handle, "row0", item, f"by-{client.node.name}")
                return (yield from client.commit(handle))

            return cluster.env.process(run())

        p1 = proc(first, ("a0", "a1"), 0.0)
        p2 = proc(second, items_second, 0.1)
        cluster.run()
        return cluster, p1.value, p2.value

    def test_conflicting_pair_one_aborts(self):
        _cluster, first, second = self.run_pair(disjoint=False)
        assert sorted([first.committed, second.committed]) == [False, True]
        loser = first if not first.committed else second
        assert loser.abort_reason is AbortReason.LOST_POSITION

    def test_disjoint_pair_still_one_aborts(self):
        """The paper's indictment of basic Paxos: no data conflict, yet one
        transaction aborts because both want the same log position."""
        _cluster, first, second = self.run_pair(disjoint=True)
        assert sorted([first.committed, second.committed]) == [False, True]

    def test_invariants_hold_after_contention(self):
        cluster, first, second = self.run_pair(disjoint=False)
        cluster.check_invariants(GROUP, [first, second])


class TestFastPath:
    def test_leader_grants_only_first_claimant(self):
        cluster = preloaded()
        service = cluster.services["V1"]
        from repro.net.message import Message
        from repro.paxos.messages import LeaderClaimPayload

        first = service._on_leader_claim(
            Message(src="c1", dst="svc:V1", type="leader.claim",
                    payload=LeaderClaimPayload(GROUP, 1, "c1"))
        )
        second = service._on_leader_claim(
            Message(src="c2", dst="svc:V1", type="leader.claim",
                    payload=LeaderClaimPayload(GROUP, 1, "c2"))
        )
        repeat = service._on_leader_claim(
            Message(src="c1", dst="svc:V1", type="leader.claim",
                    payload=LeaderClaimPayload(GROUP, 1, "c1"))
        )
        assert first.granted
        assert not second.granted
        assert repeat.granted  # idempotent for the holder

    def test_fastpath_skips_prepare_messages(self):
        cluster = preloaded(leader_fastpath=True)
        client = cluster.add_client("V1", protocol="paxos")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a0", "v")
            return (yield from client.commit(handle))

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value.committed
        assert cluster.network.stats.by_type.get("paxos.prepare", 0) == 0

    def test_disabled_fastpath_uses_prepare(self):
        cluster = preloaded(leader_fastpath=False)
        client = cluster.add_client("V1", protocol="paxos")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a0", "v")
            return (yield from client.commit(handle))

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value.committed
        assert cluster.network.stats.by_type.get("paxos.prepare", 0) == 3

    def test_two_replica_cluster_commits(self):
        cluster = make_cluster("VV")
        cluster.preload(GROUP, {"row0": {"a0": "init"}})
        client = cluster.add_client("V1", protocol="paxos")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a0", "v")
            return (yield from client.commit(handle))

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value.committed
