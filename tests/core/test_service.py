"""Tests for the Transaction Service: reads, application, catch-up, leaders."""

from repro.core.service import BeginRequest, ReadRequest, service_name
from repro.net.message import Message
from tests.conftest import make_cluster, run_txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {"a": "init"}})
    return cluster


def ask(cluster, dc, msg_type, payload, src_dc="V1"):
    """Send one request to a service from a bare client node and wait."""
    from repro.net.node import Node

    client = Node(cluster.env, cluster.network,
                  f"probe:{cluster.env.rng.stream('probe').random()}", src_dc)

    def proc():
        responses = yield client.request(service_name(dc), msg_type, payload,
                                         timeout_ms=10_000)
        return responses[0].payload if responses else None

    process = cluster.env.process(proc())
    cluster.run()
    return process.value


class TestBeginHandler:
    def test_empty_log_reports_position_zero_and_home_leader(self):
        cluster = preloaded()
        reply = ask(cluster, "V2", "txn.begin", BeginRequest(GROUP))
        assert reply.read_position == 0
        assert reply.leader_dc == "V1"  # home DC

    def test_leader_follows_previous_winner(self):
        cluster = preloaded()
        client = cluster.add_client("V2")
        run_txn(cluster, client, GROUP, writes=[("row0", "a", "x")])
        reply = ask(cluster, "V1", "txn.begin", BeginRequest(GROUP))
        assert reply.read_position == 1
        assert reply.leader_dc == "V2"  # the winner's datacenter


class TestReadHandler:
    def test_read_applies_pending_log_entries(self):
        cluster = preloaded()
        client = cluster.add_client("V1")
        run_txn(cluster, client, GROUP, writes=[("row0", "a", "new")])
        reply = ask(cluster, "V3", "txn.read",
                    ReadRequest(GROUP, "row0", "a", position=1))
        assert reply.ok
        assert reply.value == "new"
        assert cluster.services["V3"].replica(GROUP).applied_through == 1

    def test_read_at_old_position_sees_old_value(self):
        cluster = preloaded()
        client = cluster.add_client("V1")
        run_txn(cluster, client, GROUP, writes=[("row0", "a", "new")])
        reply = ask(cluster, "V2", "txn.read",
                    ReadRequest(GROUP, "row0", "a", position=0))
        assert reply.ok
        assert reply.value == "init"

    def test_catch_up_fetches_missed_decision(self):
        """V3 misses the APPLY (outage); a later read forces catch-up."""
        cluster = preloaded()
        client = cluster.add_client("V1")
        cluster.network.take_down("V3")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a", "new")])
        assert outcome.committed  # V1+V2 form a quorum
        assert cluster.services["V3"].replica(GROUP).chosen_entry(1) is None
        cluster.network.bring_up("V3")
        reply = ask(cluster, "V3", "txn.read",
                    ReadRequest(GROUP, "row0", "a", position=1))
        assert reply.ok
        assert reply.value == "new"
        assert cluster.services["V3"].replica(GROUP).chosen_entry(1) is not None

    def test_unlearnable_position_reports_failure(self):
        """A read beyond any decided position cannot be served."""
        cluster = preloaded()
        reply = ask(cluster, "V2", "txn.read",
                    ReadRequest(GROUP, "row0", "a", position=7))
        assert not reply.ok

    def test_concurrent_reads_apply_once(self):
        cluster = preloaded()
        client = cluster.add_client("V1")
        run_txn(cluster, client, GROUP, writes=[("row0", "a", "new")])
        from repro.net.node import Node

        probe = Node(cluster.env, cluster.network, "probe-x", "V2")
        results = []

        def proc():
            gathers = [
                probe.request(service_name("V2"), "txn.read",
                              ReadRequest(GROUP, "row0", "a", position=1),
                              timeout_ms=10_000)
                for _ in range(4)
            ]
            for gather in gathers:
                responses = yield gather
                results.append(responses[0].payload.value)

        cluster.env.process(proc())
        cluster.run()
        assert results == ["new"] * 4
        # Exactly one version of the data row at timestamp 1.
        from repro.wal.log import data_row_key

        versions = cluster.stores["V2"].versions(data_row_key(GROUP, "row0"))
        assert [v.timestamp for v in versions] == [0, 1]


class TestLeaderDc:
    def test_position_one_led_by_home(self):
        cluster = preloaded()
        assert cluster.services["V2"].leader_dc(GROUP, 1) == "V1"

    def test_unknown_previous_position_falls_back_to_home(self):
        cluster = preloaded()
        assert cluster.services["V2"].leader_dc(GROUP, 9) == "V1"
