"""Tests for the Transaction Client API (§2.2, §4 steps 1–4)."""

import pytest

from repro.errors import ServiceUnavailable, TransactionStateError
from repro.model import TransactionStatus
from tests.conftest import make_cluster, run_txn


GROUP = "g"


def preloaded_cluster(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {"a": "init-a", "b": "init-b"}})
    return cluster


class TestBegin:
    def test_begin_pins_read_position_zero_on_empty_log(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            return handle

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value.read_position == 0
        assert process.value.leader_dc == "V1"  # home DC leads position 1

    def test_begin_sees_committed_position(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")
        run_txn(cluster, client, GROUP, writes=[("row0", "a", "x")])

        def proc():
            handle = yield from client.begin(GROUP)
            return handle.read_position

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value == 1

    def test_begin_fails_over_to_remote_service(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1", protocol="paxos-cp")
        cluster.network.take_down("V1")
        # The client itself must stay reachable: only the service is down.
        # Taking down the DC kills the client too, so instead mark the
        # service node down.
        cluster.network.bring_up("V1")
        cluster.services["V1"].node.down = True

        def proc():
            handle = yield from client.begin(GROUP)
            return handle.read_position

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value == 0
        # Failover cost the 2 s timeout against the local service.
        assert cluster.env.now >= 2000.0

    def test_begin_with_all_services_down_raises(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")
        for dc in cluster.topology.names:
            cluster.services[dc].node.down = True

        def proc():
            try:
                yield from client.begin(GROUP)
            except ServiceUnavailable:
                return "unavailable"

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value == "unavailable"


class TestRead:
    def test_read_returns_initial_data(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            value = yield from client.read(handle, "row0", "a")
            return value, handle.read_set, handle.read_snapshot

        process = cluster.env.process(proc())
        cluster.run()
        value, read_set, snapshot = process.value
        assert value == "init-a"
        assert read_set == {("row0", "a")}
        assert snapshot == [(("row0", "a"), "init-a")]

    def test_read_your_own_write_a1(self):
        """(A1): a read after a write in the same txn returns the write."""
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a", "mine")
            value = yield from client.read(handle, "row0", "a")
            return value, handle.read_set

        process = cluster.env.process(proc())
        cluster.run()
        value, read_set = process.value
        assert value == "mine"
        assert read_set == set()  # buffered reads never touch the store

    def test_reads_pinned_to_begin_position_a2(self):
        """(A2): reads ignore commits that land after begin."""
        cluster = preloaded_cluster()
        reader = cluster.add_client("V1")
        writer = cluster.add_client("V2")
        observed = {}

        def reader_proc():
            handle = yield from reader.begin(GROUP)
            first = yield from reader.read(handle, "row0", "a")
            # Let the writer commit while this transaction is open.
            yield cluster.env.timeout(5000.0)
            second = yield from reader.read(handle, "row0", "b")
            observed["a"] = first
            observed["b"] = second
            outcome = yield from reader.commit(handle)
            return outcome

        def writer_proc():
            yield cluster.env.timeout(100.0)
            handle = yield from writer.begin(GROUP)
            writer.write(handle, "row0", "a", "new-a")
            writer.write(handle, "row0", "b", "new-b")
            outcome = yield from writer.commit(handle)
            assert outcome.committed
            return outcome

        cluster.env.process(reader_proc())
        cluster.env.process(writer_proc())
        cluster.run()
        assert observed == {"a": "init-a", "b": "init-b"}

    def test_repeated_read_cached(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            first = yield from client.read(handle, "row0", "a")
            second = yield from client.read(handle, "row0", "a")
            return first, second, len(handle.read_snapshot)

        process = cluster.env.process(proc())
        cluster.run()
        first, second, snapshot_length = process.value
        assert first == second == "init-a"
        assert snapshot_length == 1

    def test_read_missing_attribute_is_none(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            value = yield from client.read(handle, "row0", "never-written")
            return value

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value is None


class TestCommit:
    def test_read_only_commits_locally_and_instantly(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            yield from client.read(handle, "row0", "a")
            before = cluster.env.now
            outcome = yield from client.commit(handle)
            return outcome, cluster.env.now - before

        process = cluster.env.process(proc())
        cluster.run()
        outcome, commit_duration = process.value
        assert outcome.status is TransactionStatus.COMMITTED
        assert outcome.commit_position is None
        assert commit_duration == 0.0  # §2.2: no communication needed

    def test_write_transaction_commits_through_paxos(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")
        outcome = run_txn(cluster, client, GROUP,
                          reads=[("row0", "a")],
                          writes=[("row0", "b", "v1")])
        assert outcome.committed
        assert outcome.commit_position == 1
        assert outcome.transaction.writes == ((("row0", "b"), "v1"),)

    def test_writes_visible_to_next_transaction(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")
        run_txn(cluster, client, GROUP, writes=[("row0", "a", "updated")])

        def proc():
            handle = yield from client.begin(GROUP)
            value = yield from client.read(handle, "row0", "a")
            return value

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value == "updated"

    def test_handle_unusable_after_commit(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")

        def proc():
            handle = yield from client.begin(GROUP)
            client.write(handle, "row0", "a", 1)
            yield from client.commit(handle)
            try:
                client.write(handle, "row0", "a", 2)
            except TransactionStateError:
                return "rejected"

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value == "rejected"

    def test_last_write_wins_within_transaction(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")
        run_txn(cluster, client, GROUP,
                writes=[("row0", "a", "first"), ("row0", "a", "second")])

        def proc():
            handle = yield from client.begin(GROUP)
            return (yield from client.read(handle, "row0", "a"))

        process = cluster.env.process(proc())
        cluster.run()
        assert process.value == "second"

    def test_unknown_protocol_rejected(self):
        cluster = preloaded_cluster()
        with pytest.raises(ValueError):
            cluster.add_client("V1", protocol="two-phase-locking")

    def test_tids_unique_per_client(self):
        cluster = preloaded_cluster()
        client = cluster.add_client("V1")
        first = run_txn(cluster, client, GROUP, writes=[("row0", "a", 1)])
        second = run_txn(cluster, client, GROUP, writes=[("row0", "a", 2)])
        assert first.transaction.tid != second.transaction.tid
