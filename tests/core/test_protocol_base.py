"""Tests for the shared commit-protocol machinery."""

from repro.core.protocol import PaxosCommitBase, PositionResult, ValueDecision
from repro.wal.entry import LogEntry
from tests.conftest import make_cluster
from tests.helpers import txn

GROUP = "g"


class TestFromDecided:
    def test_own_transaction_in_entry_commits(self):
        t = txn("me", writes={"a": 1})
        entry = LogEntry.single(t)
        result = PaxosCommitBase._from_decided(entry, t, attempts=2)
        assert result.kind == "committed"
        assert result.entry is entry
        assert result.attempts == 2

    def test_membership_in_combined_entry_commits(self):
        t = txn("me", writes={"a": 1})
        entry = LogEntry.combined([txn("other", writes={"b": 1}), t])
        result = PaxosCommitBase._from_decided(entry, t, attempts=1)
        assert result.kind == "committed"

    def test_foreign_entry_is_lost(self):
        t = txn("me", writes={"a": 1})
        entry = LogEntry.single(txn("other", writes={"a": 2}))
        result = PaxosCommitBase._from_decided(entry, t, attempts=1)
        assert result.kind == "lost"
        assert result.entry is entry


class TestClaimFastPath:
    def run_claim(self, cluster, client, leader_dc, claimant="txn-a"):
        protocol = client.protocol

        def proc():
            return (yield from protocol._claim_fast_path(
                GROUP, 1, leader_dc, claimant
            ))

        process = cluster.env.process(proc())
        cluster.run()
        return process.value

    def test_first_claimant_granted(self):
        cluster = make_cluster()
        client = cluster.add_client("V1", protocol="paxos")
        assert self.run_claim(cluster, client, "V1") is True

    def test_second_transaction_denied(self):
        cluster = make_cluster()
        client = cluster.add_client("V1", protocol="paxos")
        assert self.run_claim(cluster, client, "V1", claimant="txn-a") is True
        assert self.run_claim(cluster, client, "V1", claimant="txn-b") is False

    def test_unknown_leader_datacenter_returns_false(self):
        cluster = make_cluster()
        client = cluster.add_client("V1", protocol="paxos")
        assert self.run_claim(cluster, client, "nowhere") is False

    def test_unreachable_leader_returns_false_after_timeout(self):
        cluster = make_cluster(timeout_ms=100.0)
        client = cluster.add_client("V1", protocol="paxos")
        cluster.services["V2"].node.down = True
        started = cluster.env.now
        assert self.run_claim(cluster, client, "V2") is False
        assert cluster.env.now - started >= 100.0


class TestValueDecision:
    def test_kinds(self):
        entry = LogEntry.single(txn("t", writes={"a": 1}))
        value_decision = ValueDecision(kind="value", value=entry)
        promote_decision = ValueDecision(kind="promote", winner=entry)
        assert value_decision.value is entry
        assert promote_decision.winner is entry

    def test_position_result_defaults(self):
        result = PositionResult("timeout")
        assert result.entry is None
        assert not result.fast_path
