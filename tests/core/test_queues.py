"""The asynchronous queue subsystem: entries, enqueue API, pump, dedup."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig
from repro.core.queues import (
    DeliveryTable,
    build_queue_apply,
    enumerate_sends,
    first_applies,
    queue_apply_tid,
)
from repro.errors import TransactionStateError
from repro.model import QueueSend, Transaction
from repro.serializability.checker import check_queue_delivery
from repro.wal.entry import LogEntry
from repro.wal.invariants import effective_log, queue_shadow_positions


def sharded_cluster(n_groups: int = 2, seed: int = 0) -> Cluster:
    cluster = Cluster(ClusterConfig(
        cluster_code="VVV", seed=seed,
        store=StoreConfig.instant(), jitter=0.0,
        placement=PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=n_groups,
        ),
    ))
    cluster.preload_placed({
        f"row{index}": {"a0": f"init{index}"} for index in range(n_groups)
    })
    return cluster


def run(cluster: Cluster, generator):
    process = cluster.env.process(generator)
    cluster.run()
    return process.value


def send_txn(tid: str, group: str, target: str, value: str) -> Transaction:
    return Transaction(
        tid=tid, group=group, read_set=frozenset(),
        writes=((("local", "a"), value),), read_position=0,
        sends=(QueueSend(target, ((("remote", "a"), value),)),),
    )


class TestEntryKind:
    def test_queue_apply_requires_stream_identity(self):
        message = Transaction(
            tid=queue_apply_tid("g0", "g1", 1), group="g1",
            read_set=frozenset(), writes=((("r", "a"), "v"),),
            read_position=-1,
        )
        entry = LogEntry.queue_apply(message, "g0", 1)
        assert entry.kind == "queue_apply"
        assert entry.queue_key == ("g0", 1)
        with pytest.raises(ValueError):
            LogEntry(transactions=(message,), kind="queue_apply")

    def test_queue_key_is_none_for_other_kinds(self):
        txn = send_txn("t1", "g0", "g1", "v")
        assert LogEntry.single(txn).queue_key is None
        assert LogEntry.single(txn).queue_sends == txn.sends

    def test_send_only_transaction_is_not_read_only(self):
        txn = Transaction(
            tid="t", group="g0", read_set=frozenset(), writes=(),
            read_position=0,
            sends=(QueueSend("g1", ((("r", "a"), "v"),)),),
        )
        assert not txn.is_read_only


class TestEnumeration:
    def test_seqnos_follow_log_then_member_then_send_order(self):
        log = {
            2: LogEntry.single(send_txn("t2", "g0", "g1", "b")),
            1: LogEntry(transactions=(
                send_txn("t0", "g0", "g1", "a"),
                Transaction(
                    tid="t1", group="g0", read_set=frozenset(),
                    writes=((("x", "a"), "w"),), read_position=0,
                    sends=(
                        QueueSend("g1", ((("r", "a"), "m1"),)),
                        QueueSend("g2", ((("r", "a"), "m2"),)),
                    ),
                ),
            )),
        }
        streams = enumerate_sends("g0", log)
        assert [(s.seqno, s.sender_tid) for s in streams["g1"]] == [
            (1, "t0"), (2, "t1"), (3, "t2"),
        ]
        assert [(s.seqno, s.sender_tid) for s in streams["g2"]] == [(1, "t1")]

    def test_shadows_and_effective_log_dedup_redelivery(self):
        send = QueueSend("g1", ((("r", "a"), "v"),))
        apply_entry = build_queue_apply("g0", "g1", 1, send)
        log = {1: apply_entry, 2: apply_entry, 3: apply_entry}
        assert queue_shadow_positions(log) == {2, 3}
        assert list(effective_log(log)) == [1]
        assert first_applies(log) == {("g0", 1): 1}


class TestDeliveryInvariant:
    def test_clean_stream_passes(self):
        send = QueueSend("g1", ((("remote", "a"), "v"),))
        logs = {
            "g0": {1: LogEntry.single(send_txn("t0", "g0", "g1", "v"))},
            "g1": {1: build_queue_apply("g0", "g1", 1, send)},
        }
        assert check_queue_delivery(logs) == []

    def test_dropped_send_is_reported(self):
        logs = {
            "g0": {1: LogEntry.single(send_txn("t0", "g0", "g1", "v"))},
            "g1": {},
        }
        violations = check_queue_delivery(logs)
        assert any("dropped send" in v for v in violations)
        assert check_queue_delivery(logs, require_delivery=False) == []

    def test_phantom_apply_is_reported(self):
        send = QueueSend("g1", ((("r", "a"), "v"),))
        logs = {
            "g0": {},
            "g1": {1: build_queue_apply("g0", "g1", 7, send)},
        }
        violations = check_queue_delivery(logs, require_delivery=False)
        assert any("phantom" in v for v in violations)

    def test_out_of_order_first_occurrences_are_reported(self):
        sends = [QueueSend("g1", ((("remote", "a"), f"v{k}"),)) for k in (1, 2)]
        logs = {
            "g0": {
                1: LogEntry.single(send_txn("t1", "g0", "g1", "v1")),
                2: LogEntry.single(send_txn("t2", "g0", "g1", "v2")),
            },
            "g1": {
                1: build_queue_apply("g0", "g1", 2, sends[1]),
                2: build_queue_apply("g0", "g1", 1, sends[0]),
            },
        }
        violations = check_queue_delivery(logs)
        assert any("out of order" in v for v in violations)

    def test_divergent_redelivery_twin_is_reported(self):
        good = QueueSend("g1", ((("remote", "a"), "v"),))
        evil = QueueSend("g1", ((("remote", "a"), "EVIL"),))
        logs = {
            "g0": {1: LogEntry.single(send_txn("t0", "g0", "g1", "v"))},
            "g1": {
                1: build_queue_apply("g0", "g1", 1, good),
                2: build_queue_apply("g0", "g1", 1, evil),
            },
        }
        violations = check_queue_delivery(logs)
        assert any("differs from its first occurrence" in v for v in violations)


class TestEnqueueApi:
    def test_enqueue_rides_the_single_group_commit(self):
        cluster = sharded_cluster(2, seed=3)
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            handle = yield from client.begin(key="row0")
            client.write(handle, "row0", "a0", "w")
            client.enqueue(handle, "row1", "a0", "deferred")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        assert outcome.transaction.sends == (
            QueueSend("group-1", ((("row1", "a0"), "deferred"),)),
        )
        # The send is durable in the sender's own commit entry.
        log = cluster.finalize("group-0")
        assert any(entry.queue_sends for entry in log.values())

    def test_enqueue_rejects_local_rows_and_cross_group_handles(self):
        cluster = sharded_cluster(2)
        client = cluster.add_client("V1")

        def local(handle_key):
            handle = yield from client.begin(key=handle_key)
            client.enqueue(handle, handle_key, "a0", "x")

        with pytest.raises(TransactionStateError, match="own group"):
            run(cluster, local("row0"))

        def cross():
            handle = yield from client.begin()
            client.enqueue(handle, "row1", "a0", "x")
            yield  # pragma: no cover - enqueue raises first

        with pytest.raises(TransactionStateError, match="2PC"):
            run(cluster, cross())

    def test_send_only_transaction_commits_through_the_log(self):
        cluster = sharded_cluster(2, seed=5)
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin(key="row0")
            client.enqueue(handle, "row1", "a0", "only-a-send")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        # Not the read-only shortcut: the send occupies a log position.
        log = cluster.finalize("group-0")
        assert len(log) == 1
        cluster.check_invariants_all([outcome])


class TestPump:
    def test_pump_delivers_and_applies_exactly_once(self):
        cluster = sharded_cluster(2, seed=11)
        cluster.start_queue_pumps(poll_ms=10, idle_stop_after=60)
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            for k in range(3):
                handle = yield from client.begin(key="row0")
                client.write(handle, "row0", "a0", f"w{k}")
                client.enqueue(handle, "row1", "a0", f"d{k}")
                yield from client.commit(handle)

        run(cluster, app())
        logs = cluster.finalize_all()
        applies = [e for e in logs["group-1"].values() if e.kind == "queue_apply"]
        assert len(applies) >= 3  # redelivery may add shadows, never drop
        assert len(first_applies(logs["group-1"])) == 3
        cluster.check_invariants_all([], logs=logs)
        stats = cluster.queue_stats(logs)
        assert stats.applied_online == 3
        assert stats.drained_offline == 0
        # Delivered in sender order: the last apply wins the final state.
        value = read_remote(cluster, "row1", "a0")
        assert value == "d2"

    def test_pump_crash_and_restart_never_drops_or_double_applies(self):
        cluster = sharded_cluster(2, seed=13)
        processes = cluster.start_queue_pumps(poll_ms=10, idle_stop_after=60)
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            for k in range(4):
                handle = yield from client.begin(key="row0")
                client.write(handle, "row0", "a0", f"w{k}")
                client.enqueue(handle, "row1", "a0", f"d{k}")
                yield from client.commit(handle)

        # Kill the sender pump mid-run, then restart it a beat later: the
        # fresh pump resumes from the durable watermark and redelivers at
        # most the unconfirmed tail.
        kill_at = cluster.env.timeout(160.0)
        kill_at.add_callback(
            lambda _e: processes["group-0"].kill("injected pump crash")
        )
        restart_at = cluster.env.timeout(260.0)
        restart_at.add_callback(
            lambda _e: cluster.start_queue_pump(
                "group-0", poll_ms=10, idle_stop_after=60
            )
        )
        run(cluster, app())

        logs = cluster.finalize_all()
        # Exactly-once + order + no drops, and the §3 suite over both logs.
        cluster.check_invariants_all([], logs=logs)
        assert len(first_applies(logs["group-1"])) == 4
        assert read_remote(cluster, "row1", "a0") == "d3"

    def test_drain_is_idempotent_and_completes_without_pumps(self):
        cluster = sharded_cluster(2, seed=17)
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin(key="row0")
            client.enqueue(handle, "row1", "a0", "lonely")
            yield from client.commit(handle)

        run(cluster, app())  # no pumps at all
        logs = cluster.finalize_all()
        # Before any drain: the send is committed but undelivered, which
        # must surface as a stall, not vanish from the accounting.
        before = cluster.queue_stats(logs)
        assert (before.sends, before.applied_online, before.drained_offline,
                before.undelivered, before.stalled) == (1, 0, 0, 1, 1)
        assert cluster.drain_queues(logs) == 1
        assert cluster.drain_queues(logs) == 0  # second drain finds nothing
        assert check_queue_delivery(logs) == []
        after = cluster.queue_stats(logs)
        assert (after.applied_online, after.drained_offline) == (0, 1)
        assert after.stalled == 1  # drain completions are stalls by definition
        # The drained apply is readable through the ordinary service path.
        assert read_remote(cluster, "row1", "a0") == "lonely"


def read_remote(cluster: Cluster, row: str, attribute: str):
    reader = cluster.add_client("V2")

    def app():
        handle = yield from reader.begin(key=row)
        value = yield from reader.read(handle, row, attribute)
        return value

    return run(cluster, app())


class TestDeliveryTable:
    def test_marks_and_progress_round_trip(self):
        from repro.kvstore.store import MultiVersionStore

        table = DeliveryTable(MultiVersionStore())
        assert not table.is_applied("g1", "g0", 1)
        table.mark_applied("g1", "g0", 1)
        table.mark_applied("g1", "g0", 3)
        table.mark_applied("g1", "g0", 3)  # idempotent
        assert table.is_applied("g1", "g0", 1)
        assert not table.is_applied("g1", "g0", 2)
        assert table.applied_seqnos("g1", "g0") == {1, 3}
        assert table.streams_into("g1") == {"g0": {1, 3}}

        assert table.pump_progress("g0") == (0, {})
        table.record_pump_progress("g0", 5, {"g1": 2, "g2": 1})
        assert table.pump_progress("g0") == (5, {"g1": 2, "g2": 1})
