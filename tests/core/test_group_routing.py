"""Client-side group routing: transactions stay inside one entity group."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig
from repro.errors import CrossGroupTransaction, TransactionStateError


def make_sharded_cluster(n_groups: int = 4) -> Cluster:
    return Cluster(ClusterConfig(
        cluster_code="VVV",
        store=StoreConfig.instant(),
        jitter=0.0,
        placement=PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=n_groups,
        ),
    ))


def preload_all(cluster: Cluster, n_groups: int = 4) -> None:
    cluster.preload_placed({f"row{k}": {"a": f"init:{k}"} for k in range(n_groups)})


class TestCrossGroupRejection:
    def test_read_outside_group_raises_typed_error(self):
        cluster = make_sharded_cluster()
        preload_all(cluster)
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            handle = yield from client.begin("group-0")
            yield from client.read(handle, "row3", "a")  # routes to group-3

        cluster.env.process(app())
        with pytest.raises(CrossGroupTransaction) as excinfo:
            cluster.run()
        error = excinfo.value
        assert error.handle_group == "group-0"
        assert error.row == "row3"
        assert error.row_group == "group-3"

    def test_write_outside_group_raises_before_any_message(self):
        cluster = make_sharded_cluster()
        preload_all(cluster)
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin("group-1")
            client.write(handle, "row0", "a", "oops")  # routes to group-0

        cluster.env.process(app())
        with pytest.raises(CrossGroupTransaction):
            cluster.run()

    def test_in_group_operations_commit(self):
        cluster = make_sharded_cluster()
        preload_all(cluster)
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            handle = yield from client.begin("group-2")
            value = yield from client.read(handle, "row2", "a")
            client.write(handle, "row2", "a", value + "!")
            return (yield from client.commit(handle))

        process = cluster.env.process(app())
        cluster.run()
        assert process.value.committed
        assert process.value.transaction.group == "group-2"


class TestBeginRouting:
    def test_begin_by_key_routes_via_placement(self):
        cluster = make_sharded_cluster()
        preload_all(cluster)
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin(key="row3")
            return handle

        process = cluster.env.process(app())
        cluster.run()
        assert process.value.group == "group-3"

    def test_begin_rejects_group_plus_key(self):
        cluster = make_sharded_cluster()
        client = cluster.add_client("V1")
        with pytest.raises(TransactionStateError):
            next(client.begin("group-0", key="row0"))

    def test_begin_without_target_opens_cross_group_handle(self):
        from repro.core.client import MultiGroupHandle

        cluster = make_sharded_cluster()
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            return handle

        process = cluster.env.process(app())
        cluster.run()
        assert isinstance(process.value, MultiGroupHandle)
        assert process.value.groups == ()

    def test_begin_without_target_needs_a_placement(self):
        cluster = Cluster(ClusterConfig(
            cluster_code="VVV", store=StoreConfig.instant(), jitter=0.0,
        ))
        client = cluster.add_client("V1")
        with pytest.raises(TransactionStateError):
            next(client.begin())

    def test_group_for_exposes_routing(self):
        cluster = make_sharded_cluster()
        client = cluster.add_client("V1")
        assert client.group_for("row0") == "group-0"
        assert client.group_for("row3") == "group-3"


class TestSingleGroupCompatibility:
    def test_single_group_deployments_accept_arbitrary_group_names(self):
        cluster = Cluster(ClusterConfig(
            cluster_code="VVV", store=StoreConfig.instant(), jitter=0.0,
        ))
        cluster.preload("accounts", {"alice": {"balance": 100}})
        client = cluster.add_client("V1", protocol="paxos-cp")
        assert client.placement is None

        def app():
            handle = yield from client.begin("accounts")
            balance = yield from client.read(handle, "alice", "balance")
            client.write(handle, "alice", "balance", balance - 1)
            return (yield from client.commit(handle))

        process = cluster.env.process(app())
        cluster.run()
        assert process.value.committed

    def test_group_for_without_placement_is_an_api_error(self):
        cluster = Cluster(ClusterConfig(store=StoreConfig.instant()))
        client = cluster.add_client("V1")
        with pytest.raises(TransactionStateError):
            client.group_for("row0")
