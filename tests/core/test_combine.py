"""Tests for the combination search (§5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combine import best_combination, combine, greedy_combination
from repro.model import is_serializable_sequence
from tests.helpers import txn


class TestBestCombination:
    def test_alone_when_no_candidates(self):
        own = txn("me", writes={"a": 1})
        assert best_combination(own, []) == [own]

    def test_combines_disjoint_transactions(self):
        own = txn("me", reads={"a": 0}, writes={"b": 1})
        other = txn("o1", reads={"c": 0}, writes={"d": 1})
        result = best_combination(own, [other])
        assert len(result) == 2
        assert own in result and other in result

    def test_orders_around_conflicts(self):
        # other reads what own writes: other must precede own.
        own = txn("me", writes={"a": 1})
        other = txn("o1", reads={"a": 0}, writes={"b": 1})
        result = best_combination(own, [other])
        assert result == [other, own]

    def test_excludes_hopeless_conflicts(self):
        # Mutual read-write conflict: no order works.
        own = txn("me", reads={"a": 0}, writes={"b": 1})
        other = txn("o1", reads={"b": 0}, writes={"a": 1})
        result = best_combination(own, [other])
        assert result == [own]

    def test_own_always_included(self):
        own = txn("me", reads={"a": 0}, writes={"a": 1})
        others = [txn(f"o{i}", writes={"a": i}) for i in range(3)]
        result = best_combination(own, others)
        assert any(member.tid == "me" for member in result)

    def test_maximizes_length(self):
        own = txn("me", writes={"x": 1})
        compatible = [txn(f"o{i}", writes={f"w{i}": 1}) for i in range(3)]
        # One conflicting candidate that would block a shorter greedy pick.
        conflicting = txn("bad", reads={"x": 0}, writes={"w0": 9})
        result = best_combination(own, compatible + [conflicting])
        assert len(result) == 4 or len(result) == 5
        assert is_serializable_sequence(result)

    def test_duplicates_removed(self):
        own = txn("me", writes={"a": 1})
        other = txn("o1", writes={"b": 1})
        result = best_combination(own, [other, other, other])
        assert len(result) == 2


class TestGreedy:
    def test_one_pass_keeps_validity(self):
        own = txn("me", writes={"a": 1})
        candidates = [
            txn("o1", reads={"a": 0}),       # conflicts with own if after
            txn("o2", writes={"b": 1}),       # fine
            txn("o3", reads={"b": 0}),        # conflicts with o2 if after
        ]
        result = greedy_combination(own, candidates)
        assert result[0] == own
        assert is_serializable_sequence(result)

    def test_greedy_never_empty(self):
        own = txn("me", writes={"a": 1})
        assert greedy_combination(own, []) == [own]


class TestDispatch:
    def test_small_sets_use_exhaustive(self):
        own = txn("me", writes={"a": 1})
        other = txn("o1", reads={"a": 0})
        # Exhaustive finds the [other, own] ordering; greedy (own first)
        # would drop other.
        assert combine(own, [other], exhaustive_limit=4) == [other, own]

    def test_large_sets_use_greedy(self):
        own = txn("me", writes={"a": 1})
        others = [txn(f"o{i}", reads={"a": 0}) for i in range(6)]
        result = combine(own, others, exhaustive_limit=4)
        # Greedy starts from [own]; every candidate reads own's write, so
        # none can follow it.
        assert result == [own]


transactions = st.builds(
    lambda tid, reads, writes: txn(
        tid,
        reads={a: 0 for a in reads},
        writes={a: 1 for a in writes},
    ),
    tid=st.uuids().map(str),
    reads=st.sets(st.sampled_from("abcdef"), max_size=3),
    writes=st.sets(st.sampled_from("abcdef"), max_size=3),
)


@given(own=transactions, candidates=st.lists(transactions, max_size=4))
@settings(max_examples=200, deadline=None)
def test_any_combination_is_serializable_and_contains_own(own, candidates):
    for strategy in (best_combination, greedy_combination):
        result = strategy(own, candidates)
        assert is_serializable_sequence(result)
        assert sum(1 for member in result if member.tid == own.tid) == 1
        # No duplicates.
        tids = [member.tid for member in result]
        assert len(tids) == len(set(tids))


@given(own=transactions, candidates=st.lists(transactions, max_size=4))
@settings(max_examples=200, deadline=None)
def test_exhaustive_at_least_as_long_as_greedy(own, candidates):
    exhaustive = best_combination(own, candidates)
    greedy = greedy_combination(own, candidates)
    assert len(exhaustive) >= len(greedy)
