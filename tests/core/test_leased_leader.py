"""Tests for the §7 leased-leader extension."""

from repro.core.leased_leader import LEASE_ROUND, lease_epoch_key
from repro.failures import FailureInjector
from repro.model import AbortReason
from tests.conftest import make_cluster, run_txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {f"a{i}": "init" for i in range(10)}})
    return cluster


class TestLeasedLeader:
    def test_single_commit(self):
        cluster = preloaded()
        client = cluster.add_client("V2", protocol="leased-leader")
        outcome = run_txn(cluster, client, GROUP,
                          reads=[("row0", "a0")], writes=[("row0", "a1", "v")])
        assert outcome.committed
        assert outcome.commit_position == 1

    def test_commits_replicated(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="leased-leader")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a0", "v")])
        for dc in cluster.topology.names:
            entry = cluster.services[dc].replica(GROUP).chosen_entry(1)
            assert entry is not None
            assert entry.contains(outcome.transaction.tid)

    def test_non_conflicting_concurrent_transactions_both_commit(self):
        cluster = preloaded()
        outcomes = []

        def make_proc(index, dc):
            client = cluster.add_client(dc, protocol="leased-leader")

            def run():
                yield cluster.env.timeout(index * 0.1)
                handle = yield from client.begin(GROUP)
                yield from client.read(handle, "row0", f"a{index}")
                client.write(handle, "row0", f"a{index}", f"v{index}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        make_proc(0, "V1")
        make_proc(1, "V2")
        cluster.run()
        assert all(outcome.committed for outcome in outcomes)
        positions = sorted(outcome.commit_position for outcome in outcomes)
        assert positions == [1, 2]

    def test_conflicting_transaction_aborts(self):
        cluster = preloaded()
        outcomes = []

        def make_proc(index, reads, writes):
            client = cluster.add_client("V2", protocol="leased-leader")

            def run():
                yield cluster.env.timeout(index * 0.1)
                handle = yield from client.begin(GROUP)
                for item in reads:
                    yield from client.read(handle, "row0", item)
                for item in writes:
                    client.write(handle, "row0", item, f"w{index}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        # Both read a0; the first writes it.  The second's read is stale by
        # the time the leader orders it.
        make_proc(0, ["a0"], ["a0"])
        make_proc(1, ["a0"], ["a1"])
        cluster.run()
        committed = [o for o in outcomes if o.committed]
        lost = [o for o in outcomes if not o.committed]
        assert len(committed) == 1 and len(lost) == 1
        assert lost[0].abort_reason is AbortReason.PROMOTION_CONFLICT

    def test_serializability_invariants_hold(self):
        cluster = preloaded()
        outcomes = []

        def make_proc(index, dc):
            client = cluster.add_client(dc, protocol="leased-leader")

            def run():
                yield cluster.env.timeout(index * 50.0)
                handle = yield from client.begin(GROUP)
                value = yield from client.read(handle, "row0", "a0")
                client.write(handle, "row0", "a0", f"{value}+{index}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        for index, dc in enumerate(["V1", "V2", "V3", "V1"]):
            make_proc(index, dc)
        cluster.run()
        cluster.check_invariants(GROUP, outcomes)


class TestCrashRestartFailover:
    """Lease-safe restart: no dual-leader window, ever.

    The crashed leader forgot its lease (volatile), so on restart it must
    assume some pre-crash self still holds one and wait out a full
    ``lease_ms`` before serving again — refusing commits with
    ``SERVICE_UNAVAILABLE`` in the meantime — under a strictly higher
    incarnation ballot recovered from the durable ``_meta/`` epoch row.
    """

    def test_wait_out_refuses_then_serves_with_higher_incarnation(self):
        # retry_attempts=0: a refusal must surface as the outcome, not be
        # retried past the wait-out.
        cluster = preloaded(retry_attempts=0)
        home = cluster.home_dc
        lease_ms = cluster.services[home].config.lease_ms
        injector = FailureInjector(cluster)
        # Crash the leader at 40ms; restart at 140ms; the wait-out then
        # refuses service until 140 + lease_ms.
        injector.crash(home, start_ms=40.0, restart_after_ms=100.0)
        outcomes = {}

        def make_proc(label, delay, attribute):
            client = cluster.add_client("V2", protocol="leased-leader")

            def run():
                yield cluster.env.timeout(delay)
                handle = yield from client.begin(GROUP)
                client.write(handle, "row0", attribute, f"v-{label}")
                outcomes[label] = yield from client.commit(handle)

            return cluster.env.process(run())

        make_proc("before", 0.0, "a0")
        make_proc("waiting", 200.0, "a1")          # inside the wait-out
        make_proc("after", 140.0 + lease_ms + 60.0, "a2")
        cluster.run()

        assert outcomes["before"].committed
        assert not outcomes["waiting"].committed
        assert outcomes["waiting"].abort_reason is AbortReason.SERVICE_UNAVAILABLE
        assert outcomes["after"].committed

        # The restart bumped the durable incarnation, so every post-crash
        # ballot strictly dominates every pre-crash one: the classic
        # dual-leader interleaving (old self's in-flight ACCEPT vs new
        # self) is decided by ballot order, never by wall-clock luck.
        service = cluster.services[home]
        incarnation = service.store.read_attribute(
            lease_epoch_key(service.node.name), "incarnation", default=0
        )
        assert incarnation == 1
        assert service.lease_host.ballot().round == LEASE_ROUND + 1

        # And the log the three clients saw is still gapless and 1SR.
        cluster.check_invariants(GROUP, list(outcomes.values()))
        assert cluster.check_crash_amnesia() == []

    def test_no_commit_lands_inside_the_wait_out_window(self):
        cluster = preloaded(retry_attempts=0)
        home = cluster.home_dc
        lease_ms = cluster.services[home].config.lease_ms
        injector = FailureInjector(cluster)
        injector.crash(home, start_ms=40.0, restart_after_ms=100.0)
        outcomes = []

        def make_proc(delay, attribute):
            client = cluster.add_client("V3", protocol="leased-leader")

            def run():
                yield cluster.env.timeout(delay)
                handle = yield from client.begin(GROUP)
                client.write(handle, "row0", attribute, "v")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        # A volley of commit attempts spanning the whole wait-out.
        for index, delay in enumerate((150.0, 250.0, 350.0, 450.0, 550.0)):
            make_proc(delay, f"a{index}")
        cluster.run()

        serve_after = 140.0 + lease_ms
        for outcome in outcomes:
            if outcome.committed:
                # Nothing may commit while the restarted leader still owes
                # a possible predecessor its lease.
                assert outcome.end_time >= serve_after
            else:
                assert outcome.abort_reason is AbortReason.SERVICE_UNAVAILABLE
        cluster.check_invariants(GROUP, outcomes)
