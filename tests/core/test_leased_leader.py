"""Tests for the §7 leased-leader extension."""

from repro.model import AbortReason
from tests.conftest import make_cluster, run_txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {f"a{i}": "init" for i in range(10)}})
    return cluster


class TestLeasedLeader:
    def test_single_commit(self):
        cluster = preloaded()
        client = cluster.add_client("V2", protocol="leased-leader")
        outcome = run_txn(cluster, client, GROUP,
                          reads=[("row0", "a0")], writes=[("row0", "a1", "v")])
        assert outcome.committed
        assert outcome.commit_position == 1

    def test_commits_replicated(self):
        cluster = preloaded()
        client = cluster.add_client("V1", protocol="leased-leader")
        outcome = run_txn(cluster, client, GROUP, writes=[("row0", "a0", "v")])
        for dc in cluster.topology.names:
            entry = cluster.services[dc].replica(GROUP).chosen_entry(1)
            assert entry is not None
            assert entry.contains(outcome.transaction.tid)

    def test_non_conflicting_concurrent_transactions_both_commit(self):
        cluster = preloaded()
        outcomes = []

        def make_proc(index, dc):
            client = cluster.add_client(dc, protocol="leased-leader")

            def run():
                yield cluster.env.timeout(index * 0.1)
                handle = yield from client.begin(GROUP)
                yield from client.read(handle, "row0", f"a{index}")
                client.write(handle, "row0", f"a{index}", f"v{index}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        make_proc(0, "V1")
        make_proc(1, "V2")
        cluster.run()
        assert all(outcome.committed for outcome in outcomes)
        positions = sorted(outcome.commit_position for outcome in outcomes)
        assert positions == [1, 2]

    def test_conflicting_transaction_aborts(self):
        cluster = preloaded()
        outcomes = []

        def make_proc(index, reads, writes):
            client = cluster.add_client("V2", protocol="leased-leader")

            def run():
                yield cluster.env.timeout(index * 0.1)
                handle = yield from client.begin(GROUP)
                for item in reads:
                    yield from client.read(handle, "row0", item)
                for item in writes:
                    client.write(handle, "row0", item, f"w{index}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        # Both read a0; the first writes it.  The second's read is stale by
        # the time the leader orders it.
        make_proc(0, ["a0"], ["a0"])
        make_proc(1, ["a0"], ["a1"])
        cluster.run()
        committed = [o for o in outcomes if o.committed]
        lost = [o for o in outcomes if not o.committed]
        assert len(committed) == 1 and len(lost) == 1
        assert lost[0].abort_reason is AbortReason.PROMOTION_CONFLICT

    def test_serializability_invariants_hold(self):
        cluster = preloaded()
        outcomes = []

        def make_proc(index, dc):
            client = cluster.add_client(dc, protocol="leased-leader")

            def run():
                yield cluster.env.timeout(index * 50.0)
                handle = yield from client.begin(GROUP)
                value = yield from client.read(handle, "row0", "a0")
                client.write(handle, "row0", "a0", f"{value}+{index}")
                outcomes.append((yield from client.commit(handle)))

            return cluster.env.process(run())

        for index, dc in enumerate(["V1", "V2", "V3", "V1"]):
            make_proc(index, dc)
        cluster.run()
        cluster.check_invariants(GROUP, outcomes)
