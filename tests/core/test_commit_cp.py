"""Tests for Paxos-CP (§5): combination and promotion."""

from repro.config import ProtocolConfig
from repro.core.commit_cp import enhanced_find_winning_val
from repro.model import AbortReason, TransactionStatus
from repro.paxos.ballot import NULL_BALLOT, Ballot
from repro.paxos.messages import PrepareReply
from repro.paxos.proposer import PhaseOutcome
from repro.wal.entry import LogEntry
from tests.conftest import make_cluster
from tests.helpers import txn

GROUP = "g"


def preloaded(**kwargs):
    cluster = make_cluster(**kwargs)
    cluster.preload(GROUP, {"row0": {f"a{i}": "init" for i in range(10)}})
    return cluster


def reply(success=True, last_ballot=NULL_BALLOT, last_value=None):
    return PrepareReply(
        success=success, promised=Ballot(1, "x"),
        last_ballot=last_ballot, last_value=last_value,
    )


def outcome_of(*replies):
    return PhaseOutcome(replies=[(f"s{i}", r) for i, r in enumerate(replies)])


class TestEnhancedFindWinningVal:
    """Unit tests of Algorithm 2 lines 76–87 over synthetic vote sets."""

    def setup_method(self):
        self.config = ProtocolConfig()
        self.own = txn("me", reads={"r": 0}, writes={"w": 1})
        self.own_entry = LogEntry.single(self.own)

    def test_no_votes_proposes_own(self):
        decision = enhanced_find_winning_val(
            outcome_of(reply(), reply(), reply()),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "value"
        assert decision.value == self.own_entry

    def test_minority_vote_with_full_responses_combines(self):
        other = txn("other", reads={"x": 0}, writes={"y": 1})
        voted = LogEntry.single(other)
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=Ballot(1, "o"), last_value=voted),
                reply(), reply(),
            ),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "value"
        assert decision.combined
        assert decision.value.contains("me") and decision.value.contains("other")

    def test_combination_excludes_conflicting_candidates(self):
        # The candidate reads our write and we read its write: incompatible.
        other = txn("other", reads={"w": 0}, writes={"r": 1})
        voted = LogEntry.single(other)
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=Ballot(1, "o"), last_value=voted),
                reply(), reply(),
            ),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "value"
        assert decision.value == self.own_entry

    def test_possible_hidden_majority_blocks_combination(self):
        """maxVotes + missing ≥ M ⇒ must not combine (Algorithm 2 l. 79)."""
        other = txn("other", writes={"y": 1})
        voted = LogEntry.single(other)
        # Only 2 of 3 responded; the missing vote could give `voted` 2/3.
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=Ballot(1, "o"), last_value=voted),
                reply(),
            ),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "value"
        assert decision.value == voted  # basic rule: adopt the max vote
        assert not decision.combined

    def test_same_ballot_majority_promotes(self):
        winner = LogEntry.single(txn("other", writes={"y": 1}))
        ballot = Ballot(2, "o")
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=ballot, last_value=winner),
                reply(last_ballot=ballot, last_value=winner),
                reply(),
            ),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "promote"
        assert decision.winner == winner

    def test_majority_containing_own_does_not_promote(self):
        combined = LogEntry.combined([
            txn("other", writes={"y": 1}),
            self.own,
        ])
        ballot = Ballot(2, "o")
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=ballot, last_value=combined),
                reply(last_ballot=ballot, last_value=combined),
                reply(),
            ),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "value"
        assert decision.value == combined

    def test_split_ballot_majority_falls_back_to_basic_rule(self):
        """Safety refinement: per-value majority across different ballots is
        not a decision; adopt the max-ballot vote instead of promoting."""
        winner = LogEntry.single(txn("other", writes={"y": 1}))
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=Ballot(1, "a"), last_value=winner),
                reply(last_ballot=Ballot(2, "b"), last_value=winner),
                reply(),
            ),
            self.own_entry, self.own, 3, self.config,
        )
        assert decision.kind == "value"
        assert decision.value == winner

    def test_combination_disabled_uses_basic_rule(self):
        config = ProtocolConfig(enable_combination=False)
        other = txn("other", writes={"y": 1})
        voted = LogEntry.single(other)
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=Ballot(1, "o"), last_value=voted),
                reply(), reply(),
            ),
            self.own_entry, self.own, 3, config,
        )
        assert decision.kind == "value"
        assert decision.value == voted
        assert not decision.combined

    def test_promotion_disabled_uses_basic_rule(self):
        config = ProtocolConfig(enable_promotion=False)
        winner = LogEntry.single(txn("other", writes={"y": 1}))
        ballot = Ballot(2, "o")
        decision = enhanced_find_winning_val(
            outcome_of(
                reply(last_ballot=ballot, last_value=winner),
                reply(last_ballot=ballot, last_value=winner),
                reply(),
            ),
            self.own_entry, self.own, 3, config,
        )
        assert decision.kind == "value"
        assert decision.value == winner


class TestPromotionEndToEnd:
    def run_pair(self, second_reads, second_writes, **kwargs):
        """Client 2 overlaps client 1's commit window; returns outcomes."""
        cluster = preloaded(**kwargs)
        first = cluster.add_client("V1", protocol="paxos-cp")
        second = cluster.add_client("V2", protocol="paxos-cp")

        def first_proc():
            handle = yield from first.begin(GROUP)
            yield from first.read(handle, "row0", "a0")
            first.write(handle, "row0", "a0", "first-wins")
            return (yield from first.commit(handle))

        def second_proc():
            yield cluster.env.timeout(0.05)
            handle = yield from second.begin(GROUP)
            for item in second_reads:
                yield from second.read(handle, "row0", item)
            for item in second_writes:
                second.write(handle, "row0", item, "second")
            return (yield from second.commit(handle))

        p1 = cluster.env.process(first_proc())
        p2 = cluster.env.process(second_proc())
        cluster.run()
        return cluster, p1.value, p2.value

    def test_non_conflicting_loser_promotes_and_commits(self):
        cluster, first, second = self.run_pair(
            second_reads=["a5"], second_writes=["a6"],
        )
        assert first.committed and second.committed
        winners = sorted([first, second], key=lambda o: o.commit_position)
        assert winners[0].commit_position + 1 == winners[1].commit_position
        promoted = max([first, second], key=lambda o: o.promotions)
        assert promoted.promotions == 1
        cluster.check_invariants(GROUP, [first, second])

    def test_conflicting_loser_aborts_with_promotion_conflict(self):
        # Second reads a0, which the winner writes.
        cluster, first, second = self.run_pair(
            second_reads=["a0"], second_writes=["a7"],
        )
        outcomes = [first, second]
        committed = [o for o in outcomes if o.committed]
        lost = [o for o in outcomes if not o.committed]
        assert len(committed) == 1 and len(lost) == 1
        assert lost[0].abort_reason is AbortReason.PROMOTION_CONFLICT
        cluster.check_invariants(GROUP, outcomes)

    def test_promotion_cap_zero_behaves_like_basic(self):
        cluster, first, second = self.run_pair(
            second_reads=["a5"], second_writes=["a6"],
            max_promotions=0,
        )
        statuses = sorted([first.committed, second.committed])
        assert statuses == [False, True]
        loser = first if not first.committed else second
        assert loser.abort_reason is AbortReason.PROMOTION_CAP

    def test_promotion_disabled_aborts_as_lost(self):
        cluster, first, second = self.run_pair(
            second_reads=["a5"], second_writes=["a6"],
            enable_promotion=False,
        )
        loser = first if not first.committed else second
        assert loser.abort_reason is AbortReason.LOST_POSITION

    def test_many_waves_all_commit_without_conflicts(self):
        """Five clients writing disjoint attributes: CP commits them all."""
        cluster = preloaded()
        outcomes = []

        def make_proc(index):
            client = cluster.add_client(
                cluster.topology.names[index % 3], protocol="paxos-cp"
            )

            def run():
                yield cluster.env.timeout(index * 0.2)
                handle = yield from client.begin(GROUP)
                yield from client.read(handle, "row0", f"a{index}")
                client.write(handle, "row0", f"a{index}", f"v{index}")
                outcome = yield from client.commit(handle)
                outcomes.append(outcome)

            return cluster.env.process(run())

        for index in range(5):
            make_proc(index)
        cluster.run()
        assert len(outcomes) == 5
        assert all(outcome.committed for outcome in outcomes), [
            (o.transaction.tid, str(o.abort_reason)) for o in outcomes
        ]
        cluster.check_invariants(GROUP, outcomes)
