"""The cross-group 2PC coordinator: prepare/decide/complete over group logs."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, PlacementConfig, StoreConfig
from repro.core.client import MultiGroupHandle
from repro.core.commit_2pc import TwoPhaseCommit, branch_tid
from repro.errors import TransactionStateError
from repro.kvstore.txnstatus import TxnStatusTable, decision_group
from repro.model import CROSS_GROUP, AbortReason, TransactionStatus


def sharded_cluster(n_groups: int = 4, seed: int = 0) -> Cluster:
    cluster = Cluster(ClusterConfig(
        cluster_code="VVV", seed=seed,
        store=StoreConfig.instant(), jitter=0.0,
        placement=PlacementConfig(
            n_groups=n_groups, assignment="range", key_universe=n_groups,
        ),
    ))
    cluster.preload_placed({
        f"row{index}": {"a0": f"init{index}"} for index in range(n_groups)
    })
    return cluster


def run(cluster: Cluster, generator):
    process = cluster.env.process(generator)
    cluster.run()
    return process.value


def read_row(cluster: Cluster, row: str, protocol: str = "paxos"):
    client = cluster.add_client("V2", protocol=protocol)

    def app():
        handle = yield from client.begin(key=row)
        value = yield from client.read(handle, row, "a0")
        return value

    return run(cluster, app())


class TestCrossGroupCommit:
    def test_two_group_transfer_commits_atomically(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            handle = yield from client.begin()
            yield from client.read(handle, "row0", "a0")
            yield from client.read(handle, "row3", "a0")
            client.write(handle, "row0", "a0", "x0")
            client.write(handle, "row3", "a0", "x3")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.status is TransactionStatus.COMMITTED
        assert outcome.transaction.group == CROSS_GROUP
        assert outcome.transaction.groups == ("group-0", "group-3")
        assert set(outcome.extra["prepare_positions"]) == {"group-0", "group-3"}
        cluster.check_invariants_all([outcome])
        assert read_row(cluster, "row0") == "x0"
        assert read_row(cluster, "row3") == "x3"

    def test_prepare_entries_and_markers_reach_every_participant_log(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1", protocol="paxos")

        def app():
            handle = yield from client.begin()
            client.write(handle, "row1", "a0", "w1")
            client.write(handle, "row2", "a0", "w2")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        gtid = outcome.transaction.tid
        logs = cluster.finalize_all()
        for group in ("group-1", "group-2"):
            kinds = {entry.kind for entry in logs[group].values()}
            assert kinds == {"prepare", "commit"}
            prepare = logs[group][1]
            assert prepare.gtid == gtid
            assert prepare.participants == ("group-1", "group-2")
            assert prepare.transactions[0].tid == branch_tid(gtid, group)
        # The decision is durable in every datacenter's status table.
        for store in cluster.stores.values():
            record = TxnStatusTable(store).get(gtid)
            assert record is not None and record.committed

    def test_lost_prepare_aborts_all_groups(self):
        cluster = sharded_cluster(seed=5)
        cross = cluster.add_client("V1", protocol="paxos-cp")
        rival = cluster.add_client("V2", protocol="paxos-cp")

        def app():
            handle = yield from cross.begin()
            yield from cross.read(handle, "row0", "a0")  # pins group-0
            # A rival slips into group-0 between our pin and our prepare.
            rh = yield from rival.begin(key="row0")
            yield from rival.read(rh, "row0", "a0")
            rival.write(rh, "row0", "a0", "sneak")
            rival_outcome = yield from rival.commit(rh)
            assert rival_outcome.committed
            cross.write(handle, "row0", "a0", "mine0")
            cross.write(handle, "row2", "a0", "mine2")
            outcome = yield from cross.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.status is TransactionStatus.ABORTED
        assert outcome.abort_reason is AbortReason.PREPARE_FAILED
        decisions = cluster.cross_group_decisions()
        assert decisions == {outcome.transaction.tid: False}
        cluster.check_invariants_all([outcome])
        # Nothing leaked into group-2 even though its prepare was chosen.
        assert read_row(cluster, "row2") == "init2"
        assert read_row(cluster, "row0") == "sneak"

    def test_single_group_handle_takes_the_existing_commit_path(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1", protocol="paxos-cp")

        def app():
            handle = yield from client.begin()
            assert isinstance(handle, MultiGroupHandle)
            yield from client.read(handle, "row1", "a0")
            client.write(handle, "row1", "a0", "solo")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        # An ordinary single-group transaction record and log entry — no
        # gtid, no prepare, no decision instance anywhere.
        assert outcome.transaction.group == "group-1"
        assert outcome.transaction.groups == ()
        log = cluster.finalize("group-1")
        assert [entry.kind for entry in log.values()] == ["data"]
        assert cluster.cross_group_decisions() == {}
        for store in cluster.stores.values():
            assert not any(key.startswith("_txn") for key in store.keys())

    def test_untouched_handle_commits_read_only(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        assert outcome.transaction.is_read_only

    def test_read_only_cross_group_still_prepares(self):
        # Cross-group reads need prepare-based validation for *global* 1SR;
        # they are not free the way single-group read-only commits are.
        cluster = sharded_cluster()
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            yield from client.read(handle, "row0", "a0")
            yield from client.read(handle, "row1", "a0")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        logs = cluster.finalize_all()
        assert logs["group-0"][1].kind == "prepare"
        assert logs["group-1"][1].kind == "prepare"
        cluster.check_invariants_all([outcome])

    def test_write_only_groups_pin_at_commit_time(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            client.write(handle, "row0", "a0", "blind0")
            client.write(handle, "row2", "a0", "blind2")
            assert not handle.handles["group-0"].pinned
            assert not handle.handles["group-2"].pinned
            outcome = yield from client.commit(handle)
            return outcome, handle

        outcome, handle = run(cluster, app())
        assert outcome.committed
        assert handle.handles["group-0"].pinned
        assert handle.handles["group-2"].pinned
        assert read_row(cluster, "row0") == "blind0"

    def test_read_own_write_needs_no_pin(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            client.write(handle, "row0", "a0", "buffered")
            value = yield from client.read(handle, "row0", "a0")
            # A1 served from the buffer: the group must still be unpinned.
            assert not handle.handles["group-0"].pinned
            return value

        assert run(cluster, app()) == "buffered"

    def test_cross_group_needs_paxos_protocol(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1", protocol="leased-leader")

        def app():
            handle = yield from client.begin()
            client.write(handle, "row0", "a0", "x")
            client.write(handle, "row1", "a0", "y")
            try:
                yield from client.commit(handle)
            except TransactionStateError as error:
                return error
            return None

        error = run(cluster, app())
        assert isinstance(error, TransactionStateError)


class TestRecovery:
    def _crash_between_prepare_and_decide(self, cluster, monkeypatch):
        """A coordinator whose decide phase never happens."""
        def hang(self, gtid, participants, commit):
            yield self.client.env.event()  # pragma: no cover - never fires

        monkeypatch.setattr(TwoPhaseCommit, "decide", hang)
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            yield from client.read(handle, "row1", "a0")
            client.write(handle, "row1", "a0", "w1")
            client.write(handle, "row3", "a0", "w3")
            yield from client.commit(handle)

        return cluster.env.process(app())

    def test_crash_between_prepare_and_decide_aborts_all_or_nothing(
        self, monkeypatch
    ):
        cluster = sharded_cluster(seed=7)
        process = self._crash_between_prepare_and_decide(cluster, monkeypatch)
        cluster.run()
        assert process.is_alive  # stuck exactly between prepare and decide
        logs = cluster.finalize_all()
        prepares = [
            entry for log in logs.values() for entry in log.values()
            if entry.kind == "prepare"
        ]
        assert len(prepares) == 2
        assert cluster.cross_group_decisions() == {}
        decisions = cluster.recover_cross_group(logs)
        gtid = prepares[0].gtid
        assert decisions == {gtid: False}
        cluster.check_cross_group_invariants([], logs, decisions)
        # No participant applied the branch: presumed abort, everywhere.
        assert read_row(cluster, "row1") == "init1"
        assert read_row(cluster, "row3") == "init3"

    def test_recovery_is_idempotent_and_marks_status_rows(self, monkeypatch):
        cluster = sharded_cluster(seed=8)
        self._crash_between_prepare_and_decide(cluster, monkeypatch)
        cluster.run()
        first = cluster.recover_cross_group()
        second = cluster.recover_cross_group()
        assert first == second
        (gtid,) = first
        for store in cluster.stores.values():
            record = TxnStatusTable(store).get(gtid)
            assert record is not None and not record.committed

    def test_in_doubt_positions_block_pinned_reads_until_resolved(
        self, monkeypatch
    ):
        """A read pinned at (or past) an unresolved prepare cannot be served
        — 2PC's blocking window — and resolves once recovery decides."""
        cluster = sharded_cluster(seed=10)
        self._crash_between_prepare_and_decide(cluster, monkeypatch)
        cluster.run()

        from repro.errors import ServiceUnavailable

        reader = cluster.add_client("V2")

        def blocked():
            handle = yield from reader.begin(key="row1")
            assert handle.read_position == 1  # pinned at the in-doubt prepare
            try:
                yield from reader.read(handle, "row1", "a0")
            except ServiceUnavailable as error:
                return error
            return None

        process = cluster.env.process(blocked())
        cluster.run()
        assert isinstance(process.value, ServiceUnavailable)

        cluster.recover_cross_group()
        assert read_row(cluster, "row1") == "init1"

    def test_recovery_adopts_split_ballot_commit_votes(self):
        """A COMMIT accepted at *different* ballots on different replicas is
        not a single-ballot majority, but it may still be chosen (the first
        accept round's replies were simply lost).  Recovery must complete
        the instance with that surviving vote — never presume-abort over
        it, which could flip a decision a reader already observed."""
        from repro.paxos.ballot import Ballot
        from repro.wal.entry import LogEntry
        from repro.wal.log import ATTR_BALLOT, ATTR_NEXT_BAL, ATTR_VALUE, paxos_row_key

        from repro.core.client import TransactionHandle
        from repro.core.commit_2pc import build_branch

        cluster = sharded_cluster(seed=12)
        gtid = "cli:V1:1#1"
        participants = ("group-0", "group-1")
        # Both prepares chosen in their group logs...
        for group in participants:
            handle = TransactionHandle(
                group=group, read_position=0, leader_dc="V1", begin_time=0.0,
            )
            entry = LogEntry.prepare(
                build_branch(gtid, group, handle, participants, "cli", "V1"),
                gtid, participants,
            )
            for dc in cluster.topology.names:
                cluster.services[dc].replica(group).record_chosen(1, entry)
        # ...and the COMMIT decision accepted at split ballots: V1 voted at
        # round 1, V2 at round 2, V3 never voted — no single-ballot
        # majority, yet (round 1 on a lost-reply quorum) possibly chosen.
        commit_marker = LogEntry.marker(True, gtid, participants)
        row_key = paxos_row_key(decision_group(gtid), 1)
        for dc, round_number in (("V1", 1), ("V2", 2)):
            ballot = Ballot(round_number, f"2pc:{gtid}:cli")
            cluster.stores[dc].write(row_key, {
                ATTR_NEXT_BAL: ballot, ATTR_BALLOT: ballot,
                ATTR_VALUE: commit_marker, "seq": 1,
            })

        assert cluster.cross_group_decisions() == {}
        decisions = cluster.recover_cross_group()
        assert decisions == {gtid: True}, "recovery flipped a surviving COMMIT"
        logs = cluster.finalize_all()
        cluster.check_cross_group_invariants([], logs, decisions)

    def test_recovery_cannot_override_a_durable_commit(self):
        cluster = sharded_cluster(seed=9)
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            client.write(handle, "row0", "a0", "x0")
            client.write(handle, "row1", "a0", "x1")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        assert outcome.committed
        decisions = cluster.recover_cross_group()
        assert decisions == {outcome.transaction.tid: True}


class TestDecisionInstance:
    def test_decision_is_a_paxos_value_in_every_store(self):
        cluster = sharded_cluster()
        client = cluster.add_client("V1")

        def app():
            handle = yield from client.begin()
            client.write(handle, "row0", "a0", "x")
            client.write(handle, "row1", "a0", "y")
            outcome = yield from client.commit(handle)
            return outcome

        outcome = run(cluster, app())
        gtid = outcome.transaction.tid
        instance = decision_group(gtid)
        for dc in cluster.topology.names:
            entry = cluster.services[dc].replica(instance).chosen_entry(1)
            assert entry is not None and entry.kind == "commit"
            assert entry.gtid == gtid


@pytest.mark.parametrize("protocol", ["paxos", "paxos-cp"])
def test_concurrent_single_group_traffic_stays_serializable(protocol):
    """2PC prepares interleave with ordinary commits in the same groups."""
    cluster = sharded_cluster(seed=11)
    cross = cluster.add_client("V1", protocol=protocol)
    solo = cluster.add_client("V3", protocol=protocol)
    outcomes = []

    def cross_app():
        for _round in range(3):
            handle = yield from cross.begin()
            yield from cross.read(handle, "row0", "a0")
            cross.write(handle, "row0", "a0", f"x@{cross.env.now:.1f}")
            cross.write(handle, "row2", "a0", f"y@{cross.env.now:.1f}")
            outcome = yield from cross.commit(handle)
            outcomes.append(outcome)

    def solo_app():
        for _round in range(3):
            handle = yield from solo.begin("group-0")
            yield from solo.read(handle, "row0", "a0")
            solo.write(handle, "row0", "a0", f"s@{solo.env.now:.1f}")
            outcome = yield from solo.commit(handle)
            outcomes.append(outcome)
            yield solo.env.timeout(3.0)

    cluster.env.process(cross_app())
    cluster.env.process(solo_app())
    cluster.run()
    assert len(outcomes) == 6
    cluster.check_invariants_all(outcomes)
    ok, cycle = cluster.check_global_serializability()
    assert ok, cycle
