"""Tests for the per-datacenter log replica view."""

import pytest

from repro.kvstore.store import MultiVersionStore
from repro.wal.log import LogReplica, data_row_key, paxos_row_key
from tests.helpers import entry, txn


@pytest.fixture
def replica():
    return LogReplica(MultiVersionStore("log-test"), "g")


class TestChosenEntries:
    def test_empty_log(self, replica):
        assert replica.chosen_entry(1) is None
        assert not replica.is_chosen(1)
        assert replica.read_position() == 0

    def test_record_and_read_back(self, replica):
        e = entry(txn("t1", writes={"a": 1}))
        replica.record_chosen(1, e)
        assert replica.chosen_entry(1) == e
        assert replica.is_chosen(1)

    def test_record_chosen_idempotent(self, replica):
        e = entry(txn("t1", writes={"a": 1}))
        replica.record_chosen(1, e)
        replica.record_chosen(1, e)  # no RowVersionError
        assert replica.chosen_entry(1) == e

    def test_read_position_is_last_contiguous(self, replica):
        replica.record_chosen(1, entry(txn("t1", writes={"a": 1})))
        replica.record_chosen(2, entry(txn("t2", writes={"a": 2})))
        replica.record_chosen(4, entry(txn("t4", writes={"a": 4})))
        assert replica.read_position() == 2  # gap at 3

    def test_max_chosen_position_sees_past_gaps(self, replica):
        replica.record_chosen(1, entry(txn("t1", writes={"a": 1})))
        replica.record_chosen(4, entry(txn("t4", writes={"a": 4})))
        assert replica.max_chosen_position() == 4

    def test_entries_lists_all_chosen(self, replica):
        first = entry(txn("t1", writes={"a": 1}))
        second = entry(txn("t2", writes={"a": 2}))
        replica.record_chosen(1, first)
        replica.record_chosen(2, second)
        assert replica.entries() == {1: first, 2: second}

    def test_unchosen_paxos_rows_not_listed(self, replica):
        # Simulate an acceptor vote without a decision.
        replica.store.write(paxos_row_key("g", 1), {"nextBal": "x"})
        assert replica.entries() == {}


class TestApplication:
    def test_apply_entry_writes_data_rows_at_position(self, replica):
        replica.record_chosen(1, entry(txn("t1", writes={"a": 10})))
        replica.apply_through(1)
        assert replica.applied_through == 1
        value = replica.store.read_attribute(data_row_key("g", "row0"), "a",
                                             timestamp=1)
        assert value == 10

    def test_apply_through_applies_in_order(self, replica):
        replica.record_chosen(1, entry(txn("t1", writes={"a": 1})))
        replica.record_chosen(2, entry(txn("t2", writes={"a": 2})))
        replica.apply_through(2)
        assert replica.read_data("row0", "a", position=1) == 1
        assert replica.read_data("row0", "a", position=2) == 2

    def test_combined_entry_applies_merged_image(self, replica):
        replica.record_chosen(1, entry(
            txn("t1", writes={"a": 1, "b": 1}),
            txn("t2", writes={"a": 2}),
        ))
        replica.apply_through(1)
        assert replica.read_data("row0", "a", position=1) == 2
        assert replica.read_data("row0", "b", position=1) == 1

    def test_pending_application_gap_raises(self, replica):
        replica.record_chosen(2, entry(txn("t2", writes={"a": 2})))
        with pytest.raises(LookupError):
            list(replica.pending_applications(2))

    def test_mark_applied_requires_order(self, replica):
        with pytest.raises(ValueError):
            replica.mark_applied(2)

    def test_read_data_beyond_applied_raises(self, replica):
        with pytest.raises(LookupError):
            replica.read_data("row0", "a", position=1)

    def test_read_data_default_when_never_written(self, replica):
        replica.record_chosen(1, entry(txn("t1", writes={"a": 1})))
        replica.apply_through(1)
        assert replica.read_data("row0", "zz", position=1, default="d") == "d"

    def test_preloaded_data_visible_at_position_zero_reads(self, replica):
        replica.store.write(data_row_key("g", "row0"), {"a": "init"}, timestamp=0)
        replica.record_chosen(1, entry(txn("t1", writes={"b": 1})))
        replica.apply_through(1)
        assert replica.read_data("row0", "a", position=1) == "init"
