"""Tests for the (L1)–(L3)/(R1) checkers: they must catch planted bugs."""

import pytest

from repro.kvstore.store import MultiVersionStore
from repro.model import AbortReason
from repro.wal.invariants import (
    InvariantViolation,
    check_l1_only_committed,
    check_l2_single_position,
    check_l3_prefix_serializable,
    check_r1_replica_agreement,
    check_read_only_consistency,
    global_log,
    run_all_checks,
)
from repro.wal.log import LogReplica
from tests.helpers import aborted, committed, entry, txn


def make_replicas(n=3):
    return [LogReplica(MultiVersionStore(f"s{i}"), "g") for i in range(n)]


class TestR1:
    def test_agreeing_replicas_pass(self):
        replicas = make_replicas()
        e = entry(txn("t1", writes={"a": 1}))
        for replica in replicas:
            replica.record_chosen(1, e)
        assert check_r1_replica_agreement(replicas) == []

    def test_partial_knowledge_is_fine(self):
        replicas = make_replicas()
        e = entry(txn("t1", writes={"a": 1}))
        replicas[0].record_chosen(1, e)  # others missed the APPLY
        assert check_r1_replica_agreement(replicas) == []

    def test_divergent_values_flagged(self):
        replicas = make_replicas()
        replicas[0].record_chosen(1, entry(txn("t1", writes={"a": 1})))
        replicas[1].record_chosen(1, entry(txn("t2", writes={"a": 2})))
        violations = check_r1_replica_agreement(replicas)
        assert len(violations) == 1
        assert "(R1)" in violations[0]


class TestL1:
    def test_committed_and_logged_passes(self):
        replicas = make_replicas()
        t = txn("t1", writes={"a": 1})
        replicas[0].record_chosen(1, entry(t))
        assert check_l1_only_committed(replicas, [committed(t, 1)]) == []

    def test_committed_but_missing_flagged(self):
        replicas = make_replicas()
        t = txn("t1", writes={"a": 1})
        violations = check_l1_only_committed(replicas, [committed(t, 1)])
        assert any("absent from the log" in v for v in violations)

    def test_read_only_commit_never_logged_is_fine(self):
        replicas = make_replicas()
        t = txn("t1", reads={"a": 0})
        assert check_l1_only_committed(replicas, [committed(t)]) == []

    def test_aborted_but_logged_flagged(self):
        replicas = make_replicas()
        t = txn("t1", writes={"a": 1})
        replicas[0].record_chosen(1, entry(t))
        violations = check_l1_only_committed(
            replicas, [aborted(t, AbortReason.LOST_POSITION)]
        )
        assert any("present in the log" in v for v in violations)


class TestL2:
    def test_each_transaction_once_passes(self):
        replicas = make_replicas()
        replicas[0].record_chosen(1, entry(txn("t1", writes={"a": 1})))
        replicas[0].record_chosen(2, entry(txn("t2", writes={"a": 2})))
        assert check_l2_single_position(replicas) == []

    def test_same_transaction_twice_flagged(self):
        replicas = make_replicas()
        t = txn("t1", writes={"a": 1})
        replicas[0].record_chosen(1, entry(t))
        replicas[1].record_chosen(2, entry(t))
        violations = check_l2_single_position(replicas)
        assert any("(L2)" in v for v in violations)


class TestL3:
    def test_consistent_replay_passes(self):
        replicas = make_replicas()
        t1 = txn("t1", reads={"a": "init"}, writes={"a": "v1"}, read_position=0)
        t2 = txn("t2", reads={"a": "v1"}, writes={"a": "v2"}, read_position=1)
        replicas[0].record_chosen(1, entry(t1))
        replicas[0].record_chosen(2, entry(t2))
        violations = check_l3_prefix_serializable(
            replicas, {("row0", "a"): "init"}
        )
        assert violations == []

    def test_stale_read_flagged(self):
        replicas = make_replicas()
        t1 = txn("t1", writes={"a": "v1"}, read_position=0)
        # t2 claims to have read the initial value although t1 overwrote it.
        t2 = txn("t2", reads={"a": "init"}, writes={"b": 1}, read_position=1)
        replicas[0].record_chosen(1, entry(t1))
        replicas[0].record_chosen(2, entry(t2))
        violations = check_l3_prefix_serializable(
            replicas, {("row0", "a"): "init"}
        )
        assert any("one-copy state" in v for v in violations)

    def test_gap_flagged(self):
        replicas = make_replicas()
        replicas[0].record_chosen(2, entry(txn("t2", writes={"a": 1})))
        violations = check_l3_prefix_serializable(replicas, {})
        assert any("gap" in v for v in violations)

    def test_read_position_at_or_after_commit_flagged(self):
        replicas = make_replicas()
        t = txn("t1", writes={"a": 1}, read_position=1)
        replicas[0].record_chosen(1, entry(t))
        violations = check_l3_prefix_serializable(replicas, {})
        assert any("read_position" in v for v in violations)

    def test_combined_entry_members_replay_in_order(self):
        replicas = make_replicas()
        t1 = txn("t1", writes={"a": "v1"}, read_position=0)
        t2 = txn("t2", reads={"b": "init"}, writes={"b": "v2"}, read_position=0)
        replicas[0].record_chosen(1, entry(t1, t2))
        violations = check_l3_prefix_serializable(
            replicas, {("row0", "a"): "init", ("row0", "b"): "init"}
        )
        assert violations == []


class TestReadOnly:
    def test_consistent_snapshot_passes(self):
        replicas = make_replicas()
        t1 = txn("t1", writes={"a": "v1"}, read_position=0)
        replicas[0].record_chosen(1, entry(t1))
        ro = txn("ro", reads={"a": "v1"}, read_position=1)
        violations = check_read_only_consistency(
            replicas, [committed(ro)], {("row0", "a"): "init"}
        )
        assert violations == []

    def test_initial_snapshot_at_position_zero(self):
        replicas = make_replicas()
        ro = txn("ro", reads={"a": "init"}, read_position=0)
        violations = check_read_only_consistency(
            replicas, [committed(ro)], {("row0", "a"): "init"}
        )
        assert violations == []

    def test_torn_snapshot_flagged(self):
        replicas = make_replicas()
        t1 = txn("t1", writes={"a": "v1", "b": "v1"}, read_position=0)
        replicas[0].record_chosen(1, entry(t1))
        # Claims read position 1 but saw a mix of old and new values.
        ro = txn("ro", reads={"a": "v1", "b": "init"}, read_position=1)
        violations = check_read_only_consistency(
            replicas, [committed(ro)],
            {("row0", "a"): "init", ("row0", "b"): "init"},
        )
        assert any("(RO)" in v for v in violations)

    def test_future_read_position_flagged(self):
        replicas = make_replicas()
        ro = txn("ro", reads={"a": "init"}, read_position=5)
        violations = check_read_only_consistency(
            replicas, [committed(ro)], {("row0", "a"): "init"}
        )
        assert any("beyond" in v for v in violations)


class TestRunAll:
    def test_clean_state_passes(self):
        replicas = make_replicas()
        t = txn("t1", reads={"a": "init"}, writes={"a": "v1"})
        for replica in replicas:
            replica.record_chosen(1, entry(t))
        run_all_checks(replicas, [committed(t, 1)], {("row0", "a"): "init"})

    def test_violation_raises_with_details(self):
        replicas = make_replicas()
        t = txn("t1", writes={"a": 1})
        with pytest.raises(InvariantViolation) as info:
            run_all_checks(replicas, [committed(t, 1)], {})
        assert "absent" in str(info.value)

    def test_global_log_merges_replicas(self):
        replicas = make_replicas()
        first = entry(txn("t1", writes={"a": 1}))
        second = entry(txn("t2", writes={"a": 2}))
        replicas[0].record_chosen(1, first)
        replicas[2].record_chosen(2, second)
        assert global_log(replicas) == {1: first, 2: second}
