"""Tests for log entries and the combination validity rule."""

import pytest

from repro.model import is_serializable_sequence, union_write_set
from repro.wal.entry import LogEntry
from tests.helpers import txn


class TestModelPredicates:
    def test_reads_from_detects_read_write_overlap(self):
        reader = txn("t1", reads={"a": 1})
        writer = txn("t2", writes={"a": 2})
        assert reader.reads_from(writer)
        assert not writer.reads_from(reader)

    def test_write_write_overlap_is_not_reads_from(self):
        first = txn("t1", writes={"a": 1})
        second = txn("t2", writes={"a": 2})
        assert not first.reads_from(second)
        assert not second.reads_from(first)

    def test_is_serializable_sequence_accepts_disjoint(self):
        assert is_serializable_sequence([
            txn("t1", reads={"a": 1}, writes={"b": 1}),
            txn("t2", reads={"c": 1}, writes={"d": 1}),
        ])

    def test_is_serializable_sequence_rejects_read_after_write(self):
        assert not is_serializable_sequence([
            txn("t1", writes={"a": 1}),
            txn("t2", reads={"a": 0}),
        ])

    def test_is_serializable_sequence_accepts_write_after_read(self):
        # t2 writes what t1 read: fine, t1 read the pre-state.
        assert is_serializable_sequence([
            txn("t1", reads={"a": 0}),
            txn("t2", writes={"a": 1}),
        ])

    def test_union_write_set(self):
        items = union_write_set([
            txn("t1", writes={"a": 1}),
            txn("t2", writes={"b": 1}),
        ])
        assert items == {("row0", "a"), ("row0", "b")}

    def test_read_only_flag(self):
        assert txn("t1", reads={"a": 1}).is_read_only
        assert not txn("t2", writes={"a": 1}).is_read_only

    def test_write_image_groups_by_row(self):
        t = txn("t1", writes={"a": 1, "b": 2})
        assert t.write_image() == {"row0": {"a": 1, "b": 2}}


class TestLogEntry:
    def test_must_contain_a_transaction(self):
        with pytest.raises(ValueError):
            LogEntry(transactions=())

    def test_single(self):
        t = txn("t1", writes={"a": 1})
        e = LogEntry.single(t)
        assert e.tids == ("t1",)
        assert e.contains("t1")
        assert not e.contains("t2")

    def test_combined_validates_rule(self):
        good = LogEntry.combined([
            txn("t1", writes={"a": 1}),
            txn("t2", reads={"b": 0}, writes={"c": 1}),
        ])
        assert len(good) == 2
        with pytest.raises(ValueError):
            LogEntry.combined([
                txn("t1", writes={"a": 1}),
                txn("t2", reads={"a": 0}),
            ])

    def test_write_image_later_members_win(self):
        e = LogEntry.combined([
            txn("t1", writes={"a": 1, "b": 1}),
            txn("t2", writes={"a": 2}),
        ])
        assert e.write_image() == {"row0": {"a": 2, "b": 1}}

    def test_union_write_set(self):
        e = LogEntry.combined([
            txn("t1", writes={"a": 1}),
            txn("t2", writes={"b": 2}),
        ])
        assert e.union_write_set() == {("row0", "a"), ("row0", "b")}

    def test_entries_compare_by_content(self):
        t = txn("t1", writes={"a": 1})
        assert LogEntry.single(t) == LogEntry.single(t)
        assert LogEntry.single(t) != LogEntry.single(txn("t2", writes={"a": 1}))

    def test_iteration_order(self):
        members = [txn("t1", writes={"a": 1}), txn("t2", writes={"b": 1})]
        e = LogEntry.combined(members)
        assert list(e) == members


class TestNoopEntry:
    """The multi-Paxos gap fill a recovering leader proposes for a slot
    whose in-flight decision died with the previous incarnation."""

    def test_noop_carries_nothing(self):
        e = LogEntry.noop()
        assert e.kind == "noop"
        assert e.transactions == ()
        assert e.gtid is None
        assert not e.is_marker
        assert str(e) == "noop"

    def test_all_noops_are_equal(self):
        # (R1) compares entries across replicas by content: two leaders'
        # independent gap fills for one slot must never look divergent.
        assert LogEntry.noop() == LogEntry.noop()

    def test_noop_rejects_payload(self):
        with pytest.raises(ValueError):
            LogEntry(transactions=(txn("t1", writes={"a": 1}),), kind="noop")
        with pytest.raises(ValueError):
            LogEntry(transactions=(), kind="noop", gtid="g1")

    def test_noop_contributes_nothing_to_replay(self):
        from repro.wal.invariants import effective_transactions

        e = LogEntry.noop()
        assert effective_transactions(e) == ()
        assert e.write_image() == {}
