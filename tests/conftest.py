"""Shared fixtures.

Unit tests default to *instant* stores (zero per-operation latency) and the
paper's RTT matrix with zero jitter, so protocol logic is tested without
calibration noise.  Integration tests opt back into the calibrated defaults
where the timing matters.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, ProtocolConfig, StoreConfig
from repro.sim.env import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment with a fixed seed."""
    return Environment(seed=42)


def make_cluster(
    code: str = "VVV",
    seed: int = 0,
    instant_store: bool = True,
    loss: float = 0.0,
    jitter: float = 0.0,
    **protocol_overrides,
) -> Cluster:
    """A cluster tuned for deterministic unit testing."""
    store = StoreConfig.instant() if instant_store else StoreConfig()
    protocol = ProtocolConfig(**protocol_overrides) if protocol_overrides else ProtocolConfig()
    return Cluster(ClusterConfig(
        cluster_code=code,
        seed=seed,
        loss_probability=loss,
        jitter=jitter,
        store=store,
        protocol=protocol,
    ))


@pytest.fixture
def cluster() -> Cluster:
    """A three-datacenter Virginia cluster with instant stores."""
    return make_cluster("VVV")


def run_txn(cluster: Cluster, client, group: str, reads=(), writes=(), pre_ops=None):
    """Convenience: run one transaction to completion and return the outcome.

    ``reads`` is an iterable of (row, attribute); ``writes`` of
    (row, attribute, value).  ``pre_ops`` is an optional generator function
    run inside the transaction before the reads (for tests that need custom
    sequencing).
    """

    def txn():
        handle = yield from client.begin(group)
        if pre_ops is not None:
            yield from pre_ops(handle)
        for row, attribute in reads:
            yield from client.read(handle, row, attribute)
        for row, attribute, value in writes:
            client.write(handle, row, attribute, value)
        outcome = yield from client.commit(handle)
        return outcome

    process = cluster.env.process(txn())
    cluster.run()
    if not process.ok:
        raise process.value
    return process.value
