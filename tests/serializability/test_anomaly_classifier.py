"""Tests for the anomaly classifier on hand-doctored histories.

The classifier (:func:`repro.serializability.checker.classify_anomalies`)
names each non-serializable phenomenon instead of failing the run — the
snapshot-isolation axis depends on it.  Real SI runs only ever manufacture
write skew (read-only transactions are never logged, §3.2), so the
read-only anomaly and the unnamed-cycle fallback are exercised here on
hand-built histories.
"""

from repro.serializability.checker import (
    classify_anomalies,
    is_one_copy_serializable,
)
from repro.serializability.history import HistoryTxn, MVHistory

X = ("row0", "x")
Y = ("row0", "y")
Z = ("row0", "z")


def history_of(*txns):
    history = MVHistory()
    for t in txns:
        history.add(t)
    # List order defines version order.
    for t in txns:
        for item in t.writes:
            history.version_order.setdefault(item, []).append(t.tid)
    return history


class TestWriteSkew:
    def history(self):
        # The canonical pair: each reads the initial version of the item
        # the other writes.  No write-write conflict, so first-committer-
        # wins admits both — and the MVSG closes a pure rw/rw 2-cycle.
        return history_of(
            HistoryTxn("t1", reads=((X, None),), writes=frozenset({Y})),
            HistoryTxn("t2", reads=((Y, None),), writes=frozenset({X})),
        )

    def test_classified_as_write_skew(self):
        report = classify_anomalies(self.history())
        assert not report.serializable
        assert report.counts() == {"write_skew": 1}
        (anomaly,) = report.anomalies
        assert anomaly.kind == "write_skew"
        assert anomaly.cycle == ("t1", "t2")

    def test_description_is_byte_stable(self):
        # The description is an artifact operators diff across runs; pin it.
        (anomaly,) = classify_anomalies(self.history()).anomalies
        assert anomaly.description == (
            "write skew: t1 and t2 overwrote each other's snapshot reads "
            "(t2 overwrote t1's read of [('row0', 'x')], "
            "t1 overwrote t2's read of [('row0', 'y')])"
        )

    def test_deterministic_across_calls(self):
        first = classify_anomalies(self.history())
        second = classify_anomalies(self.history())
        assert first == second


class TestReadOnlyAnomaly:
    def history(self):
        # Fekete et al.'s surprise: the two writers serialize fine
        # (t2 before t1), but the read-only t3 saw t1's write while missing
        # t2's — a snapshot no serial order of the three explains.
        return history_of(
            HistoryTxn("t1", reads=((Y, None),), writes=frozenset({Y})),
            HistoryTxn("t2", reads=((X, None), (Y, None)),
                       writes=frozenset({X})),
            HistoryTxn("t3", reads=((X, None), (Y, "t1"))),
        )

    def test_writers_alone_are_serializable(self):
        writers_only = history_of(
            HistoryTxn("t1", reads=((Y, None),), writes=frozenset({Y})),
            HistoryTxn("t2", reads=((X, None), (Y, None)),
                       writes=frozenset({X})),
        )
        ok, _ = is_one_copy_serializable(writers_only)
        assert ok

    def test_classified_as_read_only_anomaly(self):
        report = classify_anomalies(self.history())
        assert report.counts() == {"read_only_anomaly": 1}
        (anomaly,) = report.anomalies
        assert anomaly.cycle[0] == "t3"
        assert "t3 wrote nothing" in anomaly.description
        assert "t3 -> t2 -> t1 -> t3" in anomaly.description


class TestOtherCycles:
    def test_three_way_skew_falls_back_to_other(self):
        # A 3-cycle of anti-dependencies with no mutual pair and no
        # read-only member: real, non-serializable, but unnamed.
        history = history_of(
            HistoryTxn("t1", reads=((X, None),), writes=frozenset({Y})),
            HistoryTxn("t2", reads=((Y, None),), writes=frozenset({Z})),
            HistoryTxn("t3", reads=((Z, None),), writes=frozenset({X})),
        )
        report = classify_anomalies(history)
        assert report.counts() == {"other": 1}
        (anomaly,) = report.anomalies
        assert "no named pattern" in anomaly.description


class TestAgreementWithPassFailChecker:
    def cases(self):
        clean_chain = history_of(
            HistoryTxn("t1", writes=frozenset({X})),
            HistoryTxn("t2", reads=((X, "t1"),), writes=frozenset({X})),
            HistoryTxn("t3", reads=((X, "t2"),)),
        )
        disjoint = history_of(
            HistoryTxn("t1", writes=frozenset({X})),
            HistoryTxn("t2", writes=frozenset({Y})),
        )
        skew = history_of(
            HistoryTxn("t1", reads=((X, None),), writes=frozenset({Y})),
            HistoryTxn("t2", reads=((Y, None),), writes=frozenset({X})),
        )
        torn = history_of(
            HistoryTxn("t2", writes=frozenset({Y})),
            HistoryTxn("t1", reads=((Y, "t2"),), writes=frozenset({X})),
            HistoryTxn("t3", reads=((X, "t1"), (Y, None))),
        )
        return [MVHistory(), clean_chain, disjoint, skew, torn]

    def test_empty_report_iff_one_copy_serializable(self):
        for history in self.cases():
            ok, _ = is_one_copy_serializable(history)
            report = classify_anomalies(history)
            assert report.serializable == ok
            assert bool(report.counts()) != ok

    def test_clean_histories_report_nothing(self):
        report = classify_anomalies(MVHistory())
        assert report.serializable
        assert report.anomalies == ()
        assert report.counts() == {}
