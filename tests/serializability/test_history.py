"""Tests for history construction and validation."""

import pytest

from repro.errors import HistoryError
from repro.serializability.history import (
    INITIAL,
    HistoryTxn,
    MVHistory,
    serial_reads_from,
)
from tests.helpers import entry, txn

A = ("row0", "a")
B = ("row0", "b")


class TestValidation:
    def test_duplicate_tid_rejected(self):
        history = MVHistory()
        history.add(HistoryTxn("t1"))
        with pytest.raises(HistoryError):
            history.add(HistoryTxn("t1"))

    def test_read_from_unknown_writer_rejected(self):
        history = MVHistory()
        history.add(HistoryTxn("t1", reads=((A, "ghost"),)))
        with pytest.raises(HistoryError):
            history.validate()

    def test_read_from_non_writer_rejected(self):
        history = MVHistory()
        history.add(HistoryTxn("t1", writes=frozenset({B})))
        history.add(HistoryTxn("t2", reads=((A, "t1"),)))
        history.version_order[B] = ["t1"]
        with pytest.raises(HistoryError):
            history.validate()

    def test_version_order_must_cover_all_writers(self):
        history = MVHistory()
        history.add(HistoryTxn("t1", writes=frozenset({A})))
        with pytest.raises(HistoryError):
            history.validate()

    def test_valid_history_passes(self):
        history = MVHistory()
        history.add(HistoryTxn("t1", writes=frozenset({A})))
        history.add(HistoryTxn("t2", reads=((A, "t1"),)))
        history.version_order[A] = ["t1"]
        history.validate()

    def test_version_index(self):
        history = MVHistory()
        history.add(HistoryTxn("t1", writes=frozenset({A})))
        history.add(HistoryTxn("t2", writes=frozenset({A})))
        history.version_order[A] = ["t1", "t2"]
        assert history.version_index(A, INITIAL) == 0
        assert history.version_index(A, "t1") == 1
        assert history.version_index(A, "t2") == 2


class TestSerialReadsFrom:
    def test_serial_execution_tracks_last_writer(self):
        t1 = HistoryTxn("t1", writes=frozenset({A}))
        t2 = HistoryTxn("t2", reads=((A, None),), writes=frozenset({A}))
        t3 = HistoryTxn("t3", reads=((A, None),))
        result = serial_reads_from([t1, t2, t3])
        assert result["t1"] == {}
        assert result["t2"] == {A: "t1"}
        assert result["t3"] == {A: "t2"}

    def test_initial_reads(self):
        t1 = HistoryTxn("t1", reads=((A, None),))
        assert serial_reads_from([t1])["t1"] == {A: INITIAL}


class TestFromLog:
    def test_reads_attributed_to_writers_by_value(self):
        t1 = txn("t1", reads={"a": "init"}, writes={"a": "v1"}, read_position=0)
        t2 = txn("t2", reads={"a": "v1"}, writes={"a": "v2"}, read_position=1)
        history = MVHistory.from_log(
            {1: entry(t1), 2: entry(t2)},
            initial_image={A: "init"},
        )
        assert history.transactions["t1"].reads == ((A, INITIAL),)
        assert history.transactions["t2"].reads == ((A, "t1"),)
        assert history.version_order[A] == ["t1", "t2"]

    def test_unattributable_read_rejected(self):
        t1 = txn("t1", reads={"a": "phantom"}, writes={"b": 1})
        with pytest.raises(HistoryError):
            MVHistory.from_log({1: entry(t1)}, initial_image={A: "init"})

    def test_combined_entries_expand_in_order(self):
        t1 = txn("t1", writes={"a": "v1"}, read_position=0)
        t2 = txn("t2", reads={"b": "init"}, writes={"b": "v2"}, read_position=0)
        history = MVHistory.from_log(
            {1: entry(t1, t2)},
            initial_image={A: "init", B: "init"},
        )
        assert set(history.tids()) == {"t1", "t2"}
        assert history.version_order[A] == ["t1"]
        assert history.version_order[B] == ["t2"]

    def test_future_read_attributed_for_bug_detection(self):
        """A read of a later position's value must still build (the MVSG
        test then reports the cycle, rather than from_log masking the bug)."""
        t1 = txn("t1", reads={"a": "v2"}, writes={"b": 1}, read_position=0)
        t2 = txn("t2", writes={"a": "v2"}, read_position=1)
        history = MVHistory.from_log(
            {1: entry(t1), 2: entry(t2)},
            initial_image={A: "init"},
        )
        assert history.transactions["t1"].reads == ((A, "t2"),)
