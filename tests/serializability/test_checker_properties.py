"""Property-based cross-validation of the two serializability oracles.

The MVSG acyclicity test (polynomial, given a version order) must agree
with the brute-force Definition-1 search (exponential, exact over *all*
serial orders) in one direction: **acyclic MVSG ⇒ brute force finds a
witness** — the MVSG test is sound for its version order.  (The converse
does not hold in general: a history can be 1SR under a *different* version
order, which the given-order MVSG test may reject.  On histories generated
*from an execution order* — like ours, where the log defines versions — the
tests agree both ways; we check that stronger agreement on exactly such
histories.)
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serializability.checker import (
    brute_force_one_copy_serializable,
    is_one_copy_serializable,
)
from repro.serializability.history import HistoryTxn, MVHistory

ITEMS = [("row0", "a"), ("row0", "b"), ("row0", "c")]


@st.composite
def execution_histories(draw):
    """Histories arising from an ordered execution with snapshot reads.

    Each transaction reads some items *from the state at a position at or
    before its own slot* and writes some items; versions are ordered by
    slot.  This generates both serializable histories (reads from the
    immediately preceding state) and non-serializable ones (stale reads).
    """
    n = draw(st.integers(min_value=1, max_value=6))
    history = MVHistory()
    # state_at[s][item] = writer of item after slot s (slot 0 = initial).
    states: list[dict] = [{item: None for item in ITEMS}]
    for slot in range(1, n + 1):
        tid = f"t{slot}"
        read_items = draw(st.sets(st.sampled_from(ITEMS), max_size=2))
        write_items = draw(st.sets(st.sampled_from(ITEMS), max_size=2))
        reads = []
        for item in sorted(read_items):
            # Read from any past state — possibly stale.
            source_slot = draw(st.integers(min_value=0, max_value=slot - 1))
            reads.append((item, states[source_slot][item]))
        history.add(HistoryTxn(tid, reads=tuple(reads), writes=frozenset(write_items)))
        new_state = dict(states[-1])
        for item in write_items:
            history.version_order.setdefault(item, []).append(tid)
            new_state[item] = tid
        states.append(new_state)
    return history


@given(execution_histories())
@settings(max_examples=300, deadline=None)
def test_mvsg_sound_for_given_order(history):
    """MVSG acyclic ⇒ an equivalent serial order exists (Definition 1)."""
    ok, _cycle = is_one_copy_serializable(history)
    if ok:
        assert brute_force_one_copy_serializable(history)


@given(execution_histories())
@settings(max_examples=300, deadline=None)
def test_mvsg_complete_on_execution_histories(history):
    """On log-ordered histories the MVSG test is also complete.

    If the brute force finds *no* serial order at all, the MVSG must have a
    cycle (otherwise the topological order would be a witness, contradiction
    with the soundness test above); conversely if brute force succeeds under
    *some* order... we only assert the direction that matters for our use:
    brute-force failure ⇒ MVSG cycle.
    """
    if not brute_force_one_copy_serializable(history):
        ok, cycle = is_one_copy_serializable(history)
        assert not ok
        assert cycle


@given(execution_histories())
@settings(max_examples=150, deadline=None)
def test_fresh_reads_always_serializable(history):
    """A history whose every read is from the immediately preceding state is
    1SR by construction — rebuild the history with fresh reads and check."""
    fresh = MVHistory()
    last_writer = {item: None for item in ITEMS}
    for tid in history.tids():
        txn = history.transactions[tid]
        reads = tuple((item, last_writer[item]) for item, _ in txn.reads)
        fresh.add(HistoryTxn(tid, reads=reads, writes=txn.writes))
        for item in txn.writes:
            fresh.version_order.setdefault(item, []).append(tid)
            last_writer[item] = tid
    ok, cycle = is_one_copy_serializable(fresh)
    assert ok, f"fresh-read history must be serializable, got cycle {cycle}"
