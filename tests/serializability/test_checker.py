"""Tests for the one-copy serializability checkers on known histories."""

import pytest

from repro.serializability.checker import (
    brute_force_one_copy_serializable,
    equivalent_serial_order,
    is_one_copy_serializable,
)
from repro.serializability.history import HistoryTxn, MVHistory

A = ("row0", "a")
B = ("row0", "b")


def history_of(*txns, version_order=None):
    history = MVHistory()
    for t in txns:
        history.add(t)
    if version_order:
        history.version_order.update(version_order)
    else:
        # Default: list order defines version order.
        for t in txns:
            for item in t.writes:
                history.version_order.setdefault(item, []).append(t.tid)
    return history


class TestKnownSerializable:
    def test_empty_history(self):
        ok, cycle = is_one_copy_serializable(MVHistory())
        assert ok and cycle is None

    def test_serial_chain(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", reads=((A, "t1"),), writes=frozenset({A})),
            HistoryTxn("t3", reads=((A, "t2"),)),
        )
        ok, _ = is_one_copy_serializable(history)
        assert ok
        assert brute_force_one_copy_serializable(history)

    def test_disjoint_transactions(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", writes=frozenset({B})),
        )
        ok, _ = is_one_copy_serializable(history)
        assert ok

    def test_snapshot_readers(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A, B})),
            HistoryTxn("ro1", reads=((A, "t1"), (B, "t1"))),
            HistoryTxn("ro2", reads=((A, None), (B, None))),
        )
        ok, _ = is_one_copy_serializable(history)
        assert ok
        assert brute_force_one_copy_serializable(history)


class TestKnownNonSerializable:
    def test_classic_lost_update_cycle(self):
        # Both read the initial version of the other's item, then write:
        # t1 reads a0 writes b, t2 reads b0 writes a — write versions ordered
        # after the reads → cycle.
        history = history_of(
            HistoryTxn("t1", reads=((A, None),), writes=frozenset({B})),
            HistoryTxn("t2", reads=((B, None),), writes=frozenset({A})),
        )
        ok, cycle = is_one_copy_serializable(history)
        assert not ok
        assert cycle
        assert not brute_force_one_copy_serializable(history)

    def test_torn_snapshot(self):
        # t3 reads a from t1 but b from the initial version although t2
        # (which wrote b) is ordered before t1's write it also read... the
        # inconsistency: t3 sees t2's effect missing but t1's present while
        # t1 read t2's write — no serial order satisfies all three.
        history = history_of(
            HistoryTxn("t2", writes=frozenset({B})),
            HistoryTxn("t1", reads=((B, "t2"),), writes=frozenset({A})),
            HistoryTxn("t3", reads=((A, "t1"), (B, None))),
        )
        ok, _ = is_one_copy_serializable(history)
        assert not ok
        assert not brute_force_one_copy_serializable(history)

    def test_stale_read_after_overwrite(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", reads=((A, "t1"),), writes=frozenset({A})),
            # t3 reads t1's version but writes a later version of A than t2:
            HistoryTxn("t3", reads=((A, "t1"),), writes=frozenset({A})),
            # t4 pins the order by reading t3 and t2... creates the tangle.
            HistoryTxn("t4", reads=((A, "t3"),)),
        )
        # version order A: t1 < t2 < t3; t3 read t1 skipping t2 while being
        # ordered after it → t3 must precede t2 (read) and follow it
        # (version order) → cycle.
        ok, _ = is_one_copy_serializable(history)
        assert not ok


class TestEquivalentSerialOrder:
    def test_order_respects_reads_from(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", reads=((A, "t1"),)),
        )
        order = equivalent_serial_order(history)
        assert order.index("t1") < order.index("t2")

    def test_raises_on_cycle(self):
        history = history_of(
            HistoryTxn("t1", reads=((A, None),), writes=frozenset({B})),
            HistoryTxn("t2", reads=((B, None),), writes=frozenset({A})),
        )
        with pytest.raises(ValueError):
            equivalent_serial_order(history)

    def test_witness_order_replays_identically(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", reads=((A, "t1"),), writes=frozenset({B})),
            HistoryTxn("t3", reads=((B, "t2"), (A, "t1"))),
        )
        from repro.serializability.history import serial_reads_from

        order = equivalent_serial_order(history)
        txns = [history.transactions[tid] for tid in order]
        replayed = serial_reads_from(txns)
        for tid, txn in history.transactions.items():
            assert replayed[tid] == txn.reads_map()


class TestBruteForce:
    def test_cap_enforced(self):
        history = history_of(
            *[HistoryTxn(f"t{i}", writes=frozenset({A})) for i in range(9)]
        )
        with pytest.raises(ValueError):
            brute_force_one_copy_serializable(history)
