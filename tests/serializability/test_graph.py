"""Tests for MVSG construction details."""

from repro.serializability.graph import (
    INITIAL_NODE,
    build_mvsg,
    find_cycle,
    serial_order_from_graph,
)
from repro.serializability.history import HistoryTxn, MVHistory

A = ("row0", "a")
B = ("row0", "b")


def history_of(*txns):
    history = MVHistory()
    for t in txns:
        history.add(t)
        for item in t.writes:
            history.version_order.setdefault(item, []).append(t.tid)
    return history


class TestEdges:
    def test_reads_from_edge(self):
        history = history_of(
            HistoryTxn("w", writes=frozenset({A})),
            HistoryTxn("r", reads=((A, "w"),)),
        )
        graph = build_mvsg(history)
        assert graph.has_edge("w", "r")

    def test_initial_read_edge_from_sentinel(self):
        history = history_of(HistoryTxn("r", reads=((A, None),)))
        graph = build_mvsg(history)
        assert graph.has_edge(INITIAL_NODE, "r")

    def test_later_version_forces_reader_first(self):
        # r reads the initial version; w writes a later version: r → w.
        history = history_of(
            HistoryTxn("r", reads=((A, None),)),
            HistoryTxn("w", writes=frozenset({A})),
        )
        graph = build_mvsg(history)
        assert graph.has_edge("r", "w")

    def test_earlier_version_orders_writers(self):
        # r reads w2's version; w1 wrote an earlier version: w1 → w2.
        history = history_of(
            HistoryTxn("w1", writes=frozenset({A})),
            HistoryTxn("w2", writes=frozenset({A})),
            HistoryTxn("r", reads=((A, "w2"),)),
        )
        graph = build_mvsg(history)
        assert graph.has_edge("w1", "w2")

    def test_no_self_loops(self):
        history = history_of(
            HistoryTxn("t", reads=((A, None),), writes=frozenset({A})),
        )
        graph = build_mvsg(history)
        assert not list(graph.edges("t", data=False)) or ("t", "t") not in graph.edges


class TestCycleDetection:
    def test_acyclic_reports_none(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", reads=((A, "t1"),)),
        )
        assert find_cycle(build_mvsg(history)) is None

    def test_cycle_reported_with_members(self):
        history = history_of(
            HistoryTxn("t1", reads=((A, None),), writes=frozenset({B})),
            HistoryTxn("t2", reads=((B, None),), writes=frozenset({A})),
        )
        cycle = find_cycle(build_mvsg(history))
        assert cycle is not None
        assert {"t1", "t2"} <= set(cycle)


class TestSerialOrder:
    def test_sentinel_removed(self):
        history = history_of(HistoryTxn("r", reads=((A, None),)))
        order = serial_order_from_graph(build_mvsg(history))
        assert order == ["r"]

    def test_topological(self):
        history = history_of(
            HistoryTxn("t1", writes=frozenset({A})),
            HistoryTxn("t2", reads=((A, "t1"),), writes=frozenset({B})),
            HistoryTxn("t3", reads=((B, "t2"),)),
        )
        order = serial_order_from_graph(build_mvsg(history))
        assert order.index("t1") < order.index("t2") < order.index("t3")
