"""Builders shared across test modules."""

from __future__ import annotations

from typing import Any

from repro.model import Transaction, TransactionOutcome, TransactionStatus
from repro.wal.entry import LogEntry


def txn(
    tid: str,
    reads: dict[str, Any] | None = None,
    writes: dict[str, Any] | None = None,
    read_position: int = 0,
    group: str = "g",
    origin_dc: str = "V1",
) -> Transaction:
    """A transaction over single-row items: attribute name → value.

    ``reads`` maps attribute → the value observed (recorded in the
    snapshot); ``writes`` maps attribute → the value written.  Items are
    ``("row0", attribute)``.
    """
    reads = reads or {}
    writes = writes or {}
    read_items = tuple(sorted(("row0", a) for a in reads))
    return Transaction(
        tid=tid,
        group=group,
        read_set=frozenset(read_items),
        writes=tuple((("row0", a), v) for a, v in sorted(writes.items())),
        read_position=read_position,
        origin=f"cli:{tid}",
        origin_dc=origin_dc,
        read_snapshot=tuple((("row0", a), v) for a, v in sorted(reads.items())),
    )


def entry(*txns: Transaction) -> LogEntry:
    return LogEntry(transactions=tuple(txns))


def committed(transaction: Transaction, position: int | None = None,
              promotions: int = 0) -> TransactionOutcome:
    return TransactionOutcome(
        transaction=transaction,
        status=TransactionStatus.COMMITTED,
        commit_position=position,
        promotions=promotions,
    )


def aborted(transaction: Transaction, reason) -> TransactionOutcome:
    return TransactionOutcome(
        transaction=transaction,
        status=TransactionStatus.ABORTED,
        abort_reason=reason,
    )
